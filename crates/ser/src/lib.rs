//! # gddr-ser
//!
//! In-tree JSON serialization for the GDDR reproduction — the hermetic
//! replacement for `serde` + the serializer that previously lived in
//! `gddr-bench::json`.
//!
//! The workspace serializes three kinds of artifacts: experiment
//! results (the figure JSON files under `results/`), experiment
//! configs, and parameter checkpoints. All are trees of numbers,
//! strings, arrays and objects, so the machinery is a small explicit
//! value model ([`Json`]) plus two traits:
//!
//! - [`ToJson`] — build a [`Json`] tree, then [`Json::to_string`]
//!   writes compact JSON identical in shape to what the old
//!   serde-based path produced;
//! - [`FromJson`] — rebuild a value from a parsed [`Json`] tree
//!   ([`Json::parse`]).
//!
//! ```
//! use gddr_ser::{FromJson, Json, ToJson};
//!
//! let v: Vec<(usize, f64)> = vec![(10, -1.5)];
//! let text = v.to_json().to_string();
//! assert_eq!(text, "[[10,-1.5]]");
//! let back = Vec::<(usize, f64)>::from_json(&Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(back, v);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers are kept as `f64` (JSON has a single number type); object
/// keys are ordered by insertion via a `Vec` to keep output stable and
/// match struct-field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// An object builder: `Json::obj([("k", v.to_json()), ...])`.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object or the key is absent.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field {key:?}"))),
            other => Err(JsonError::new(format!(
                "expected object with field {key:?}, got {}",
                other.kind()
            ))),
        }
    }

    /// The array elements.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an array.
    pub fn elements(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Writes compact JSON.
    ///
    /// Integral floats print without a decimal point (`10000`, not
    /// `10000.0`), matching the previous serializer's output so
    /// existing artifact shapes are unchanged.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers: results containing NaN or
    /// infinity indicate a bug upstream and must fail loudly rather
    /// than emit invalid JSON.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "non-finite float {v} cannot be serialised");
                write!(out, "{v}").expect("string write");
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| JsonError::new("bad \\u escape"))?;
                            // Only BMP escapes are produced by the
                            // writer; surrogate pairs are rejected.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character (input is valid UTF-8
                    // by construction of `&str`).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number {text:?} at byte {start}")))
    }
}

/// Types that serialize to a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that deserialize from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Rebuilds a value from JSON.
    ///
    /// # Errors
    ///
    /// Fails on shape or type mismatches.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value to a compact JSON string — the drop-in
/// replacement for the old serde-based `to_json`.
///
/// # Errors
///
/// This signature keeps the old fallible contract; the current
/// implementation only fails by panicking on non-finite floats.
pub fn to_json_string<T: ToJson>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_string())
}

/// Parses a JSON string into a value.
///
/// # Errors
///
/// Fails on malformed JSON or shape mismatches.
pub fn from_json_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

// --- impls for primitives and std containers -------------------------

macro_rules! num_impls {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                match json {
                    Json::Num(v) => Ok(*v as $t),
                    other => Err(JsonError::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
num_impls!(f64, f32, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.elements()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.elements()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {} elements",
                other.len()
            ))),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.elements()? {
            [a, b, c] => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            other => Err(JsonError::new(format!(
                "expected 3-element array, got {} elements",
                other.len()
            ))),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for text in ["null", "true", "false", "1", "-2.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integral_floats_print_without_decimal_point() {
        assert_eq!(Json::Num(10000.0).to_string(), "10000");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn struct_shape_matches_old_serializer() {
        // The exact output the serde-based serializer produced for the
        // same logical value (see the old gddr-bench::json tests).
        let s = Json::obj([
            ("name", "fig6".to_json()),
            ("values", vec![1.0, 2.5].to_json()),
            ("pair", (3usize, 4.5f64).to_json()),
            ("flag", true.to_json()),
            ("missing", (None as Option<u32>).to_json()),
            ("present", Some(7u32).to_json()),
        ]);
        assert_eq!(
            s.to_string(),
            r#"{"name":"fig6","values":[1,2.5],"pair":[3,4.5],"flag":true,"missing":null,"present":7}"#
        );
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let text = Json::Str(original.to_string()).to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn unicode_survives() {
        let s = "ρ→λ graph ☂";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,[2,3],{"b":null}],"c":{"d":[true,false]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_panic() {
        Json::Num(f64::NAN).to_string();
    }

    #[test]
    fn tuples_and_options_round_trip() {
        let log: Vec<(usize, f64)> = vec![(10, -1.5), (20, 0.25)];
        let text = log.to_json().to_string();
        assert_eq!(text, "[[10,-1.5],[20,0.25]]");
        let back: Vec<(usize, f64)> = from_json_str(&text).unwrap();
        assert_eq!(back, log);

        let triple: Vec<(usize, f64, f64)> = vec![(1, 2.0, -3.5)];
        let back3: Vec<(usize, f64, f64)> = from_json_str(&triple.to_json().to_string()).unwrap();
        assert_eq!(back3, triple);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_json().to_string(), "null");
        assert_eq!(from_json_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_json_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("k1".to_string(), 1u32);
        m.insert("k2".to_string(), 2u32);
        let text = m.to_json().to_string();
        assert_eq!(text, r#"{"k1":1,"k2":2}"#);
        let back: BTreeMap<String, u32> = from_json_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn field_lookup_and_errors() {
        let v = Json::parse(r#"{"a":1}"#).unwrap();
        assert_eq!(f64::from_json(v.field("a").unwrap()).unwrap(), 1.0);
        assert!(v.field("b").is_err());
        assert!(Json::Num(1.0).field("a").is_err());
        assert!(Json::Num(1.0).elements().is_err());
        assert!(String::from_json(&Json::Num(1.0)).is_err());
        assert!(bool::from_json(&Json::Null).is_err());
        assert!(u32::from_json(&Json::Str("x".into())).is_err());
    }

    #[test]
    fn numbers_round_trip_precisely() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, -0.0] {
            let text = Json::Num(v).to_string();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(back, v, "{text}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }
}
