//! The generation directory: numbered record files plus an
//! atomically-replaced manifest naming the latest good generation.
//!
//! Commit protocol (crash-safe by construction):
//!
//! 1. write `fleet-<g>.rec` (atomic tmp-then-rename, CRC-framed);
//! 2. replace `MANIFEST.json` (atomic) to point at generation `g` and
//!    pin its payload CRC.
//!
//! A crash between the two steps leaves the old manifest in place, so
//! recovery simply restores the previous generation. On load the
//! manifest is treated as untrusted input: the record it names must
//! exist, frame-verify, decode, carry the manifest's generation, and
//! hash to the manifest's pinned CRC — any disagreement is a typed
//! [`StoreError::ManifestMismatch`], never a silently-wrong restore.

use std::fs;
use std::path::{Path, PathBuf};

use gddr_ser::{FromJson, Json, JsonError, ToJson};

use crate::crc::crc32;
use crate::error::StoreError;
use crate::record::{decode_record, write_record};
use crate::snapshot::FleetSnapshot;
use crate::write_atomic;

/// File name of the generation manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// How many committed generations `save` retains (the pinned one plus
/// history for post-mortems).
const KEEP_GENERATIONS: u64 = 3;

/// The commit pointer: which record file holds the latest good
/// generation, and what its payload must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Generation this manifest commits.
    pub generation: u64,
    /// Record file name (relative to the store directory).
    pub file: String,
    /// CRC-32 of the record payload, cross-checked on load.
    pub payload_crc: u32,
}

impl ToJson for Manifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("generation", self.generation.to_json()),
            ("file", self.file.to_json()),
            ("payload_crc", self.payload_crc.to_json()),
        ])
    }
}

impl FromJson for Manifest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Manifest {
            generation: u64::from_json(json.field("generation")?)?,
            file: String::from_json(json.field("file")?)?,
            payload_crc: u32::from_json(json.field("payload_crc")?)?,
        })
    }
}

/// A snapshot store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record file holding `generation`.
    pub fn record_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("fleet-{generation}.rec"))
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    /// Reads the current manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingManifest`] if none exists,
    /// [`StoreError::Decode`] if it does not parse, [`StoreError::Io`]
    /// on other filesystem failures.
    pub fn manifest(&self) -> Result<Manifest, StoreError> {
        let text = match fs::read_to_string(self.manifest_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingManifest)
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Ok(Manifest::from_json(&Json::parse(&text)?)?)
    }

    /// The generation the next `save` will commit: one past the
    /// current manifest, or 1 for a fresh store.
    ///
    /// # Errors
    ///
    /// Propagates manifest read failures other than a missing
    /// manifest (a fresh store is not an error here).
    pub fn next_generation(&self) -> Result<u64, StoreError> {
        match self.manifest() {
            Ok(m) => Ok(m.generation + 1),
            Err(StoreError::MissingManifest) => Ok(1),
            Err(e) => Err(e),
        }
    }

    /// Commits `snapshot` as its declared generation: record first,
    /// manifest second, then prunes superseded record files. Returns
    /// the record size in bytes (frame header included).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure. A crash
    /// between the record write and the manifest replace leaves the
    /// previous generation committed.
    pub fn save(&self, snapshot: &FleetSnapshot) -> Result<u64, StoreError> {
        let payload = snapshot.to_json().to_string().into_bytes();
        let generation = snapshot.generation;
        let file = format!("fleet-{generation}.rec");
        write_record(&self.dir.join(&file), &payload)?;
        let manifest = Manifest {
            generation,
            file,
            payload_crc: crc32(&payload),
        };
        write_atomic(
            &self.manifest_path(),
            manifest.to_json().to_string().as_bytes(),
        )?;
        self.prune(generation);
        Ok((payload.len() + crate::record::RECORD_HEADER_LEN) as u64)
    }

    /// Removes record files older than the retention window. Best
    /// effort: pruning failures are ignored (stale records are
    /// harmless; the manifest is the single source of truth).
    fn prune(&self, committed: u64) {
        let floor = committed.saturating_sub(KEEP_GENERATIONS - 1);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(gen_text) = name
                .strip_prefix("fleet-")
                .and_then(|rest| rest.strip_suffix(".rec"))
            else {
                continue;
            };
            if let Ok(generation) = gen_text.parse::<u64>() {
                if generation < floor {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Loads the latest committed snapshot, verifying the whole chain:
    /// manifest → record frame → payload CRC pin → declared
    /// generation.
    ///
    /// # Errors
    ///
    /// Every corruption class is a distinct typed error; callers
    /// (`ShardRouter::recover_from`) turn any of them into a clean
    /// cold start.
    pub fn load(&self) -> Result<FleetSnapshot, StoreError> {
        let manifest = self.manifest()?;
        let record_path = self.dir.join(&manifest.file);
        let data = match fs::read(&record_path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::ManifestMismatch(format!(
                    "manifest names {} but the file is missing",
                    manifest.file
                )))
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        let payload = decode_record(&data)?;
        let found = crc32(&payload);
        if found != manifest.payload_crc {
            return Err(StoreError::ManifestMismatch(format!(
                "manifest pins payload CRC {:#010x} but {} hashes to {found:#010x}",
                manifest.payload_crc, manifest.file
            )));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| StoreError::Decode(format!("payload is not UTF-8: {e}")))?;
        let snapshot = FleetSnapshot::from_json(&Json::parse(text)?)?;
        if snapshot.generation != manifest.generation {
            return Err(StoreError::ManifestMismatch(format!(
                "manifest commits generation {} but the record declares {}",
                manifest.generation, snapshot.generation
            )));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ShardSnapshot;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("gddr-store-dir-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn snap(generation: u64, tick: u64) -> FleetSnapshot {
        FleetSnapshot {
            generation,
            tick,
            shards: vec![ShardSnapshot {
                shard: 0,
                name: "core".into(),
                state: Json::obj([("tick", tick.to_json())]),
            }],
        }
    }

    #[test]
    fn save_then_load_round_trips_and_generations_advance() {
        let store = tmp_store("roundtrip");
        assert!(matches!(store.load(), Err(StoreError::MissingManifest)));
        assert_eq!(store.next_generation().unwrap(), 1);
        store.save(&snap(1, 10)).unwrap();
        assert_eq!(store.load().unwrap(), snap(1, 10));
        assert_eq!(store.next_generation().unwrap(), 2);
        store.save(&snap(2, 20)).unwrap();
        assert_eq!(store.load().unwrap(), snap(2, 20));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn crash_between_record_and_manifest_restores_previous_generation() {
        let store = tmp_store("crashwindow");
        store.save(&snap(1, 10)).unwrap();
        // Simulate a crash after step 1 of the commit for generation 2:
        // the record landed, the manifest did not.
        let payload = snap(2, 20).to_json().to_string().into_bytes();
        write_record(&store.record_path(2), &payload).unwrap();
        assert_eq!(
            store.load().unwrap(),
            snap(1, 10),
            "old manifest still rules"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn lying_manifests_are_typed_errors() {
        // Points at a file that does not exist.
        let store = tmp_store("lie-missing");
        store.save(&snap(1, 10)).unwrap();
        fs::remove_file(store.record_path(1)).unwrap();
        assert!(matches!(
            store.load().unwrap_err(),
            StoreError::ManifestMismatch(_)
        ));
        let _ = fs::remove_dir_all(store.dir());

        // Claims the wrong generation for an intact record.
        let store = tmp_store("lie-generation");
        store.save(&snap(1, 10)).unwrap();
        let mut manifest = store.manifest().unwrap();
        manifest.generation = 9;
        manifest.file = "fleet-1.rec".into();
        write_atomic(
            &store.manifest_path(),
            manifest.to_json().to_string().as_bytes(),
        )
        .unwrap();
        assert!(matches!(
            store.load().unwrap_err(),
            StoreError::ManifestMismatch(_)
        ));
        let _ = fs::remove_dir_all(store.dir());

        // Pins the wrong CRC for an intact record.
        let store = tmp_store("lie-crc");
        store.save(&snap(1, 10)).unwrap();
        let mut manifest = store.manifest().unwrap();
        manifest.payload_crc ^= 0xFFFF;
        write_atomic(
            &store.manifest_path(),
            manifest.to_json().to_string().as_bytes(),
        )
        .unwrap();
        assert!(matches!(
            store.load().unwrap_err(),
            StoreError::ManifestMismatch(_)
        ));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_records_are_detected_through_load() {
        let store = tmp_store("corrupt");
        store.save(&snap(1, 10)).unwrap();
        let path = store.record_path(1);
        let good = fs::read(&path).unwrap();
        // Torn write: every truncation prefix fails typed.
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(store.load().is_err(), "cut at {cut} accepted");
        }
        // Bit flip in the payload region.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.load().unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        // Restore the good bytes and the store works again.
        fs::write(&path, &good).unwrap();
        assert_eq!(store.load().unwrap(), snap(1, 10));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn garbage_manifest_is_a_decode_error() {
        let store = tmp_store("garbage-manifest");
        fs::write(store.manifest_path(), b"not json at all").unwrap();
        assert!(matches!(store.load().unwrap_err(), StoreError::Decode(_)));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn pruning_keeps_the_retention_window() {
        let store = tmp_store("prune");
        for g in 1..=6u64 {
            store.save(&snap(g, g * 10)).unwrap();
        }
        assert!(!store.record_path(3).exists(), "generation 3 pruned");
        assert!(store.record_path(4).exists());
        assert!(store.record_path(5).exists());
        assert!(store.record_path(6).exists());
        assert_eq!(store.load().unwrap(), snap(6, 60));
        let _ = fs::remove_dir_all(store.dir());
    }
}
