//! # gddr-store
//!
//! Crash-consistent durable state for the GDDR fleet: the one audited
//! write path shared by training checkpoints and serving snapshots.
//!
//! Three layers, each usable on its own:
//!
//! - [`write_atomic`] — the tmp-then-rename primitive. A writer either
//!   lands the complete new file or leaves the old one untouched;
//!   readers never observe a half-written file under POSIX rename
//!   semantics.
//! - [`write_record`] / [`read_record`] — CRC-checksummed,
//!   length-framed record files. Every torn write (a truncation at any
//!   byte prefix) and every single bit flip is detected on read and
//!   reported as a typed [`StoreError`]; the payload is returned only
//!   when it is verifiably intact.
//! - [`Store`] — a generation directory: numbered record files plus an
//!   atomically-replaced `MANIFEST.json` naming the latest good
//!   generation and pinning its payload CRC. Recovery reads the
//!   manifest, verifies the record it points at, and cross-checks the
//!   generation and CRC — a manifest that lies (stale, missing, or
//!   pointing at the wrong generation) is itself a typed error, never
//!   a silently-wrong restore.
//!
//! On top of the framing sits [`FleetSnapshot`]: the serialisable
//! per-shard state capture (routing payloads are carried as opaque
//! JSON so this crate stays hermetic — std + `gddr-ser` only; the
//! serving layer owns the domain encoding).
//!
//! Nothing in this crate panics on untrusted bytes: every decode path
//! returns [`StoreError`].

mod crc;
mod error;
mod record;
mod snapshot;
mod store;

pub use crc::crc32;
pub use error::StoreError;
pub use record::{decode_record, encode_record, read_record, write_record, RECORD_HEADER_LEN};
pub use snapshot::{FleetSnapshot, ShardSnapshot};
pub use store::{Manifest, Store, MANIFEST_NAME};

use std::ffi::OsString;
use std::fs;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in
/// `<path>.tmp` first and is renamed over `path` only once fully
/// written, so a crash mid-write leaves any previous file intact and
/// never exposes a partial one.
///
/// This is the shared primitive behind training checkpoints
/// (`gddr_rl::checkpoint`) and serving snapshot manifests.
///
/// # Errors
///
/// Returns [`StoreError::Io`] when the temporary file cannot be
/// written or the rename fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut tmp = OsString::from(path.as_os_str());
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gddr-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_leaves_no_tmp_and_replaces_contents() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        assert!(
            !dir.join("state.json.tmp").exists(),
            "tmp must be renamed away"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_into_missing_directory_is_a_typed_error() {
        let path = std::env::temp_dir()
            .join(format!("gddr-store-missing-{}", std::process::id()))
            .join("no/such/dir/state.json");
        let err = write_atomic(&path, b"x").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
    }
}
