//! The fleet snapshot payload: what one generation of durable state
//! actually contains.
//!
//! A [`FleetSnapshot`] is a list of per-shard captures. Each
//! [`ShardSnapshot`] carries the shard id and name plus an **opaque
//! JSON state tree** — the serving layer owns the domain encoding
//! (LastGood routing, breaker, health, failover log, restart budgets,
//! SLO histogram), and this crate stays hermetic (std + `gddr-ser`
//! only) by never interpreting it. Integrity is the framing's job
//! ([`crate::decode_record`]); shape validation happens here; semantic
//! validation (does the routing fit the graph?) happens in the
//! restorer.

use gddr_ser::{FromJson, Json, JsonError, ToJson};

use crate::error::StoreError;
use crate::record::{decode_record, encode_record};

/// Durable state captured from one shard's replica set.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Stable shard index within the fleet.
    pub shard: u64,
    /// Shard name (recovery matches by name, not position).
    pub name: String,
    /// Serving-layer state tree, opaque to the store.
    pub state: Json,
}

impl ToJson for ShardSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("shard", self.shard.to_json()),
            ("name", self.name.to_json()),
            ("state", self.state.clone()),
        ])
    }
}

impl FromJson for ShardSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ShardSnapshot {
            shard: u64::from_json(json.field("shard")?)?,
            name: String::from_json(json.field("name")?)?,
            state: json.field("state")?.clone(),
        })
    }
}

/// One generation of durable fleet state.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Monotonic snapshot generation (the store's commit counter).
    pub generation: u64,
    /// The logical tick at which the snapshot was taken.
    pub tick: u64,
    /// Per-shard captures, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl ToJson for FleetSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("generation", self.generation.to_json()),
            ("tick", self.tick.to_json()),
            ("shards", self.shards.to_json()),
        ])
    }
}

impl FromJson for FleetSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FleetSnapshot {
            generation: u64::from_json(json.field("generation")?)?,
            tick: u64::from_json(json.field("tick")?)?,
            shards: Vec::from_json(json.field("shards")?)?,
        })
    }
}

impl FleetSnapshot {
    /// Frames the snapshot as record bytes (JSON payload inside the
    /// CRC/length frame).
    pub fn to_record_bytes(&self) -> Vec<u8> {
        encode_record(self.to_json().to_string().as_bytes())
    }

    /// Unframes and decodes a snapshot from record bytes.
    ///
    /// # Errors
    ///
    /// Any framing error from [`decode_record`], or
    /// [`StoreError::Decode`] when the CRC-intact payload is not a
    /// well-formed snapshot.
    pub fn from_record_bytes(data: &[u8]) -> Result<Self, StoreError> {
        let payload = decode_record(data)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| StoreError::Decode(format!("payload is not UTF-8: {e}")))?;
        Ok(Self::from_json(&Json::parse(text)?)?)
    }

    /// Looks up a shard capture by name.
    pub fn shard_named(&self, name: &str) -> Option<&ShardSnapshot> {
        self.shards.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetSnapshot {
        FleetSnapshot {
            generation: 7,
            tick: 112,
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    name: "eu-west".into(),
                    state: Json::obj([("epoch", 112u64.to_json()), ("rung", "L".to_json())]),
                },
                ShardSnapshot {
                    shard: 1,
                    name: "us-east".into(),
                    state: Json::Null,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_to_a_fixed_point() {
        let snap = sample();
        let bytes = snap.to_record_bytes();
        let back = FleetSnapshot::from_record_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Re-encoding the decoded snapshot is byte-identical: the
        // format has a fixed point, which the fuzz target relies on.
        assert_eq!(back.to_record_bytes(), bytes);
    }

    #[test]
    fn shard_lookup_is_by_name() {
        let snap = sample();
        assert_eq!(snap.shard_named("us-east").unwrap().shard, 1);
        assert!(snap.shard_named("mars").is_none());
    }

    #[test]
    fn intact_frame_with_wrong_shape_is_a_decode_error() {
        // Valid CRC, valid JSON, but not a snapshot object.
        let framed = encode_record(b"[1,2,3]");
        assert!(matches!(
            FleetSnapshot::from_record_bytes(&framed).unwrap_err(),
            StoreError::Decode(_)
        ));
        // Valid CRC, invalid JSON.
        let framed = encode_record(b"{broken");
        assert!(matches!(
            FleetSnapshot::from_record_bytes(&framed).unwrap_err(),
            StoreError::Decode(_)
        ));
        // Valid CRC, non-UTF-8 payload.
        let framed = encode_record(&[0xFF, 0xFE, 0x80]);
        assert!(matches!(
            FleetSnapshot::from_record_bytes(&framed).unwrap_err(),
            StoreError::Decode(_)
        ));
    }
}
