//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), the
//! checksum framing every record file. Hand-rolled table-driven
//! implementation — the workspace is hermetic, so no crates.io `crc`.
//!
//! CRC-32 detects **all** single-bit errors and all burst errors up to
//! 32 bits, which is exactly the corruption class the recovery drills
//! inject (bit flips and torn-write truncations; truncations are
//! additionally caught by the length frame before the CRC runs).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE, init `0xFFFF_FFFF`, final xor
/// `0xFFFF_FFFF` — the same convention as zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard zlib/IEEE reference values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let payload: Vec<u8> = (0..64u8).collect();
        let base = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    base,
                    "flip at byte {byte} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_changes_the_checksum() {
        let payload: Vec<u8> = (0..48).map(|i| (i * 37 + 11) as u8).collect();
        let base = crc32(&payload);
        for len in 0..payload.len() {
            assert_ne!(
                crc32(&payload[..len]),
                base,
                "prefix of {len} bytes undetected"
            );
        }
    }
}
