//! The typed failure vocabulary of the store. Every decode and
//! recovery path in this crate (and the serving layer above it)
//! resolves to one of these — corruption is a value, never a panic.

use std::fmt;

/// Why a store operation failed. Recovery code matches on this to
/// decide between a warm restore and a clean cold start.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is shorter than a complete record header — a torn
    /// write truncated inside the frame.
    Truncated {
        /// Bytes actually present.
        got: usize,
        /// Bytes the frame requires.
        need: usize,
    },
    /// The header magic is wrong: not a record file, or the header
    /// itself was corrupted.
    BadMagic,
    /// The frame declares a format version this build cannot read.
    BadVersion(u32),
    /// The payload length in the header disagrees with the bytes on
    /// disk (torn write past the header, or trailing garbage).
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header — the bytes
    /// were corrupted after the frame was written.
    ChecksumMismatch {
        /// CRC-32 recorded in the header.
        expected: u32,
        /// CRC-32 of the payload as read.
        found: u32,
    },
    /// No manifest exists in the store directory (nothing was ever
    /// committed, or the manifest itself was lost).
    MissingManifest,
    /// The manifest disagrees with the record it points at: the file
    /// is gone, carries a different generation, or its payload CRC
    /// does not match the manifest's pin. A lying manifest must never
    /// produce a warm restore.
    ManifestMismatch(String),
    /// The payload bytes were intact (CRC passed) but did not decode
    /// into the expected structure.
    Decode(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Truncated { got, need } => {
                write!(f, "record truncated: {got} bytes present, {need} required")
            }
            StoreError::BadMagic => write!(f, "record header magic mismatch"),
            StoreError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            StoreError::LengthMismatch { declared, actual } => write!(
                f,
                "record length mismatch: header declares {declared} payload bytes, found {actual}"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "record checksum mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
            StoreError::MissingManifest => write!(f, "no manifest in store directory"),
            StoreError::ManifestMismatch(msg) => write!(f, "manifest mismatch: {msg}"),
            StoreError::Decode(msg) => write!(f, "record payload decode failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<gddr_ser::JsonError> for StoreError {
    fn from(e: gddr_ser::JsonError) -> Self {
        StoreError::Decode(e.0)
    }
}

impl StoreError {
    /// Short stable tag for telemetry (`recovery` events carry it so
    /// operators can count corruption classes without string parsing).
    pub fn kind_name(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::Truncated { .. } => "truncated",
            StoreError::BadMagic => "bad_magic",
            StoreError::BadVersion(_) => "bad_version",
            StoreError::LengthMismatch { .. } => "length_mismatch",
            StoreError::ChecksumMismatch { .. } => "checksum_mismatch",
            StoreError::MissingManifest => "missing_manifest",
            StoreError::ManifestMismatch(_) => "manifest_mismatch",
            StoreError::Decode(_) => "decode",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind_names_are_stable() {
        let errors: Vec<StoreError> = vec![
            StoreError::Io(std::io::Error::other("disk on fire")),
            StoreError::Truncated { got: 3, need: 20 },
            StoreError::BadMagic,
            StoreError::BadVersion(9),
            StoreError::LengthMismatch {
                declared: 100,
                actual: 7,
            },
            StoreError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
            StoreError::MissingManifest,
            StoreError::ManifestMismatch("generation 3 != 4".into()),
            StoreError::Decode("not an object".into()),
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for e in errors {
            assert!(!e.to_string().is_empty());
            kinds.insert(e.kind_name());
        }
        assert_eq!(kinds.len(), 9, "kind names must be distinct");
    }
}
