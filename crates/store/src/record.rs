//! CRC-checksummed, length-framed record files — the on-disk unit of
//! durability.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GDDRSTO1" (7-byte tag + 1-byte version)
//! 8       8     payload length (u64)
//! 16      4     payload CRC-32 (IEEE)
//! 20      len   payload bytes
//! ```
//!
//! The decode order is deliberate: length checks run before the CRC so
//! a torn write (truncation at any byte prefix) is reported as
//! [`StoreError::Truncated`] / [`StoreError::LengthMismatch`] without
//! ever hashing garbage, and a full-length frame with flipped bits is
//! caught by the checksum. Every corruption class maps to a distinct
//! typed error; no path panics.

use std::path::Path;

use crate::crc::crc32;
use crate::error::StoreError;
use crate::write_atomic;

/// 7-byte format tag; the eighth magic byte is the version.
const MAGIC_TAG: &[u8; 7] = b"GDDRSTO";
/// The record format version this build reads and writes.
const VERSION: u8 = b'1';
/// Bytes of framing before the payload: magic + length + CRC.
pub const RECORD_HEADER_LEN: usize = 8 + 8 + 4;

/// Frames `payload` into a complete record byte string.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC_TAG);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes a record, returning the payload only if it is verifiably
/// intact.
///
/// # Errors
///
/// - [`StoreError::Truncated`] — fewer bytes than a complete header.
/// - [`StoreError::BadMagic`] / [`StoreError::BadVersion`] — the file
///   is not a record, or was written by an incompatible format.
/// - [`StoreError::LengthMismatch`] — the payload was cut short or has
///   trailing garbage.
/// - [`StoreError::ChecksumMismatch`] — bit corruption inside the
///   payload.
pub fn decode_record(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    if data.len() < RECORD_HEADER_LEN {
        return Err(StoreError::Truncated {
            got: data.len(),
            need: RECORD_HEADER_LEN,
        });
    }
    if &data[..7] != MAGIC_TAG {
        return Err(StoreError::BadMagic);
    }
    if data[7] != VERSION {
        return Err(StoreError::BadVersion(u32::from(data[7])));
    }
    let declared = u64::from_le_bytes(data[8..16].try_into().expect("8-byte slice"));
    let actual = (data.len() - RECORD_HEADER_LEN) as u64;
    if declared != actual {
        return Err(StoreError::LengthMismatch { declared, actual });
    }
    let expected = u32::from_le_bytes(data[16..20].try_into().expect("4-byte slice"));
    let payload = &data[RECORD_HEADER_LEN..];
    let found = crc32(payload);
    if expected != found {
        return Err(StoreError::ChecksumMismatch { expected, found });
    }
    Ok(payload.to_vec())
}

/// Writes `payload` to `path` as a framed record, atomically.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_record(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    write_atomic(path, &encode_record(payload))
}

/// Reads and verifies the record at `path`.
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read, otherwise any
/// [`decode_record`] error.
pub fn read_record(path: &Path) -> Result<Vec<u8>, StoreError> {
    decode_record(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_payloads_of_every_small_size() {
        for len in 0..64usize {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let framed = encode_record(&payload);
            assert_eq!(framed.len(), RECORD_HEADER_LEN + len);
            assert_eq!(decode_record(&framed).unwrap(), payload);
        }
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        let framed = encode_record(b"the fleet snapshot payload");
        for cut in 0..framed.len() {
            let err = decode_record(&framed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::LengthMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error() {
        let framed = encode_record(b"routing state must not lie");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                let err = decode_record(&bad).unwrap_err();
                assert!(
                    matches!(
                        err,
                        StoreError::BadMagic
                            | StoreError::BadVersion(_)
                            | StoreError::LengthMismatch { .. }
                            | StoreError::ChecksumMismatch { .. }
                    ),
                    "flip at byte {byte} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_a_length_mismatch() {
        let mut framed = encode_record(b"abc");
        framed.push(0xAA);
        assert!(matches!(
            decode_record(&framed).unwrap_err(),
            StoreError::LengthMismatch {
                declared: 3,
                actual: 4
            }
        ));
    }

    #[test]
    fn future_version_is_rejected_without_hashing() {
        let mut framed = encode_record(b"payload");
        framed[7] = b'2';
        assert!(matches!(
            decode_record(&framed).unwrap_err(),
            StoreError::BadVersion(v) if v == u32::from(b'2')
        ));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join(format!("gddr-store-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet-1.rec");
        write_record(&path, b"snapshot bytes").unwrap();
        assert_eq!(read_record(&path).unwrap(), b"snapshot bytes");
        let missing = dir.join("fleet-2.rec");
        assert!(matches!(
            read_record(&missing).unwrap_err(),
            StoreError::Io(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
