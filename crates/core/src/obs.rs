//! Observation construction.
//!
//! The paper's key observation-space insight (§V-B): a GNN needs
//! constant-size per-vertex features, so instead of handing each vertex
//! its full demand row/column (`O(|V|²)` total), each vertex gets its
//! total outgoing and incoming demand (Eq. 4), giving `O(|V|)` total.
//! Inputs are normalised "as otherwise the more vertices in a graph,
//! the greater the size of the input features".

use std::collections::VecDeque;
use std::sync::Arc;

use gddr_gnn::GraphStructure;
use gddr_nn::Matrix;
use gddr_traffic::DemandMatrix;

/// A bounded FIFO of the most recent demand matrices.
#[derive(Debug, Clone)]
pub struct DemandHistory {
    capacity: usize,
    items: VecDeque<DemandMatrix>,
}

impl DemandHistory {
    /// A history holding the last `capacity` matrices (the paper's
    /// memory length `m`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history needs positive capacity");
        DemandHistory {
            capacity,
            items: VecDeque::new(),
        }
    }

    /// Maximum length.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the history holds no matrices yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the history is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends a matrix, evicting the oldest if full.
    pub fn push(&mut self, dm: DemandMatrix) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(dm);
    }

    /// Clears the history (episode reset).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The stored matrices, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DemandMatrix> {
        self.items.iter()
    }
}

/// Normalisation scale for a demand matrix: the mean demand per
/// commodity, so aggregated per-node sums land near `O(1)` regardless
/// of graph size.
fn demand_scale(dm: &DemandMatrix) -> f64 {
    let n = dm.num_nodes();
    let pairs = (n * (n - 1)).max(1) as f64;
    let mean = dm.total() / pairs;
    if mean > 0.0 {
        mean * n as f64
    } else {
        1.0
    }
}

/// Per-node features for a demand history (Eq. 4, stacked over the
/// history): an `n × 2m` matrix whose row `v` holds
/// `[out_sum, in_sum]` for each of the `m` history steps, oldest
/// first, each normalised by that matrix's demand scale.
///
/// If the history holds fewer than `m` matrices, missing steps are
/// zero (as at episode start).
pub fn node_features(history: &DemandHistory, num_nodes: usize, memory: usize) -> Matrix {
    let mut feats = Matrix::zeros(num_nodes, 2 * memory);
    let offset = memory.saturating_sub(history.len());
    for (i, dm) in history.iter().enumerate() {
        let col = 2 * (offset + i);
        let scale = demand_scale(dm);
        for v in 0..num_nodes {
            feats.set(v, col, dm.out_sum(v) / scale);
            feats.set(v, col + 1, dm.in_sum(v) / scale);
        }
    }
    feats
}

/// The MLP baseline's observation: the history's demand matrices
/// flattened and concatenated (oldest first), normalised per matrix.
/// Missing history steps are zero-padded. Length is `m · n²`.
pub fn flat_features(history: &DemandHistory, num_nodes: usize, memory: usize) -> Vec<f64> {
    let n2 = num_nodes * num_nodes;
    let mut flat = vec![0.0; memory * n2];
    let offset = memory.saturating_sub(history.len());
    for (i, dm) in history.iter().enumerate() {
        let scale = demand_scale(dm) / num_nodes as f64;
        let base = (offset + i) * n2;
        for (j, &d) in dm.as_flat().iter().enumerate() {
            flat[base + j] = d / scale;
        }
    }
    flat
}

/// The observation type shared by every GDDR policy.
///
/// MLP policies read [`DdrObs::flat`]; GNN policies read the
/// graph-structured fields. Carrying both keeps a single environment
/// implementation for all policies (the paper trains both on the same
/// environment).
#[derive(Debug, Clone)]
pub struct DdrObs {
    /// Static connectivity of the current graph.
    pub structure: Arc<GraphStructure>,
    /// n×2m per-node demand aggregates (Eq. 4).
    pub node_feats: Matrix,
    /// m_e×3 per-edge features (Eq. 6; zeros in the one-shot env).
    pub edge_feats: Matrix,
    /// 1×1 global feature (sub-step progress in the iterative env).
    pub globals: Matrix,
    /// Flattened demand history for the MLP baseline.
    pub flat: Vec<f64>,
    /// For the iterative env: the edge whose weight this action sets.
    pub target_edge: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;
    use gddr_traffic::gen::{bimodal, BimodalParams};

    fn dm_with(n: usize, entries: &[(usize, usize, f64)]) -> DemandMatrix {
        let mut dm = DemandMatrix::zeros(n);
        for &(s, t, d) in entries {
            dm.set(s, t, d);
        }
        dm
    }

    #[test]
    fn history_evicts_oldest() {
        let mut h = DemandHistory::new(2);
        h.push(dm_with(3, &[(0, 1, 1.0)]));
        h.push(dm_with(3, &[(0, 1, 2.0)]));
        h.push(dm_with(3, &[(0, 1, 3.0)]));
        assert_eq!(h.len(), 2);
        let first = h.iter().next().unwrap();
        assert_eq!(first.get(0, 1), 2.0);
        assert!(h.is_full());
    }

    #[test]
    fn node_features_shape_and_alignment() {
        let mut h = DemandHistory::new(3);
        h.push(dm_with(3, &[(0, 1, 6.0)]));
        let f = node_features(&h, 3, 3);
        assert_eq!(f.shape(), (3, 6));
        // Only the newest slot (columns 4,5) is populated.
        for c in 0..4 {
            for v in 0..3 {
                assert_eq!(f.get(v, c), 0.0);
            }
        }
        assert!(f.get(0, 4) > 0.0); // node 0 out_sum
        assert!(f.get(1, 5) > 0.0); // node 1 in_sum
    }

    #[test]
    fn node_features_are_normalised() {
        // Scaling all demands by 100 must not change features.
        let mut rng = StdRng::seed_from_u64(0);
        let dm = bimodal(6, &BimodalParams::default(), &mut rng);
        let mut h1 = DemandHistory::new(1);
        h1.push(dm.clone());
        let mut h2 = DemandHistory::new(1);
        h2.push(dm.scaled(100.0));
        let f1 = node_features(&h1, 6, 1);
        let f2 = node_features(&h2, 6, 1);
        for v in 0..6 {
            for c in 0..2 {
                assert!((f1.get(v, c) - f2.get(v, c)).abs() < 1e-12);
            }
        }
        // Magnitudes are O(1).
        assert!(f1.max() < 5.0);
    }

    #[test]
    fn flat_features_layout() {
        let mut h = DemandHistory::new(2);
        h.push(dm_with(2, &[(0, 1, 4.0)]));
        let f = flat_features(&h, 2, 2);
        assert_eq!(f.len(), 8);
        // First matrix slot zero-padded, second holds the data.
        assert!(f[..4].iter().all(|&x| x == 0.0));
        assert!(f[4 + 1] > 0.0); // position (0,1) of the newest matrix
    }

    #[test]
    fn flat_features_scale_invariance() {
        let mut rng = StdRng::seed_from_u64(1);
        let dm = bimodal(4, &BimodalParams::default(), &mut rng);
        let mut h1 = DemandHistory::new(1);
        h1.push(dm.clone());
        let mut h2 = DemandHistory::new(1);
        h2.push(dm.scaled(7.0));
        let f1 = flat_features(&h1, 4, 1);
        let f2 = flat_features(&h2, 4, 1);
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = DemandHistory::new(2);
        h.push(dm_with(2, &[(0, 1, 1.0)]));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        DemandHistory::new(0);
    }
}
