//! # gddr-core
//!
//! GDDR: GNN-based Data-Driven Routing — the paper's primary
//! contribution, assembled from the substrate crates:
//!
//! - [`obs`]: observation construction — the per-node demand
//!   aggregation of Eq. 4 (GNN policies) and the flattened
//!   demand-history observation of Valadarsky et al. (MLP baseline),
//! - [`mod@env`]: the data-driven-routing RL environment (paper §V): the
//!   agent observes the last `m` demand matrices, emits edge weights,
//!   softmin routing translates them into a routing strategy, and the
//!   reward compares the achieved max-link-utilisation against the LP
//!   optimum (Eq. 2). Includes the multi-graph variant used for the
//!   generalisation experiment (Fig. 8),
//! - [`env_iterative`]: the iterative environment backing the
//!   Iterative GNN policy (§VII-B): one edge weight is set per
//!   sub-step, with edge-tagged observations (Eq. 6) and a learned
//!   softmin temperature (Eq. 7),
//! - [`policies`]: the MLP baseline policy (§VII, Fig. 4), the GNN
//!   encode-process-decode policy (§VII-A, Fig. 5) and the Iterative
//!   GNN policy (§VII-B),
//! - [`eval`]: evaluation of trained policies as mean
//!   `U_agent / U_opt` ratios over held-out demand sequences, plus the
//!   shortest-path baseline ratio (the dotted line in Figs. 6 and 8),
//! - [`experiment`]: ready-made experiment harnesses regenerating the
//!   paper's Figs. 6, 7 and 8.
//!
//! # Quickstart
//!
//! ```no_run
//! use gddr_core::experiment::{fixed_graph, FixedGraphConfig};
//!
//! let mut config = FixedGraphConfig::default();
//! config.train_steps = 2_000; // scaled down; paper uses 500k
//! let result = fixed_graph(&config);
//! println!("GNN ratio {:.3} vs shortest path {:.3}",
//!          result.gnn.eval.mean_ratio, result.shortest_path.mean_ratio);
//! ```

pub mod env;
pub mod env_iterative;
pub mod error;
pub mod eval;
pub mod experiment;
pub mod obs;
pub mod policies;

pub use env::{
    routing_ratio, try_routing_ratio, DdrEnv, DdrEnvConfig, FailureInjector, GraphContext,
    MultiGraphDdrEnv, RatioOutcome,
};
pub use env_iterative::IterativeDdrEnv;
pub use error::CoreError;
pub use obs::DdrObs;
pub use policies::{BatchGreedy, GnnIterativePolicy, GnnPolicy, GnnPolicyConfig, MlpPolicy};
