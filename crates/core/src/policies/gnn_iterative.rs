//! The Iterative GNN policy (paper §VII-B).
//!
//! Same encode-process-decode trunk as [`crate::GnnPolicy`], but the
//! action is read from the decoded *global* attribute (Eq. 7): a
//! `(weight, γ)` pair for the edge tagged in the observation (Eq. 6).
//! Because the action size is fixed at 2, the policy trains across
//! graphs of different sizes — the property that makes it the best
//! performer in the paper's Fig. 8.

use gddr_rng::rngs::StdRng;

use gddr_gnn::{EncodeProcessDecode, EpdConfig, GraphFeatures};
use gddr_nn::dist::DiagGaussian;
use gddr_nn::{Matrix, ParamId, ParamStore, Tape, Var};
use gddr_rl::{ActionSample, Evaluation, Policy};

use crate::obs::DdrObs;
use crate::policies::GnnPolicyConfig;

/// Iterative GNN policy: one `(weight, γ)` action per tagged edge.
#[derive(Debug, Clone)]
pub struct GnnIterativePolicy {
    store: ParamStore,
    net: EncodeProcessDecode,
    log_std: ParamId,
    config: GnnPolicyConfig,
}

impl GnnIterativePolicy {
    /// Builds the policy.
    pub fn new(config: &GnnPolicyConfig, init_log_std: f64, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let epd = EpdConfig {
            node_in: 2 * config.memory,
            edge_in: 3,
            global_in: 1,
            node_out: 1,
            edge_out: 1,
            // Global decode: [weight mean, gamma mean, value].
            global_out: 3,
            latent: config.latent,
            hidden: config.hidden,
            message_steps: config.message_steps,
            layer_norm: config.layer_norm,
        };
        let net = EncodeProcessDecode::new(&mut store, "gnn_iter_policy", &epd, rng);
        let log_std = store.register(
            "log_std",
            Matrix::row_vector(vec![init_log_std, init_log_std]),
        );
        GnnIterativePolicy {
            store,
            net,
            log_std,
            config: *config,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GnnPolicyConfig {
        &self.config
    }

    /// Total trainable scalars.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Serialises the parameters.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, w: impl std::io::Write) -> Result<(), gddr_nn::params::ParamIoError> {
        self.store.save(w)
    }

    /// Restores parameters saved by [`GnnIterativePolicy::save`].
    ///
    /// # Errors
    ///
    /// Fails on layout mismatch or corrupt data.
    pub fn load(&mut self, r: impl std::io::Read) -> Result<(), gddr_nn::params::ParamIoError> {
        self.store.load(r)
    }

    fn dist(&self, tape: &mut Tape, obs: &DdrObs) -> (DiagGaussian, Var) {
        let features = GraphFeatures {
            nodes: obs.node_feats.clone(),
            edges: obs.edge_feats.clone(),
            globals: obs.globals.clone(),
        };
        let out = self
            .net
            .forward(tape, &self.store, &obs.structure, &features);
        let mean = tape.slice_cols(out.globals, 0, 2);
        let value = tape.slice_cols(out.globals, 2, 3);
        let log_std = tape.param(&self.store, self.log_std);
        (DiagGaussian::new(tape, mean, log_std), value)
    }
}

impl Policy for GnnIterativePolicy {
    type Obs = DdrObs;

    fn act(&self, obs: &DdrObs, rng: &mut StdRng) -> ActionSample {
        let mut tape = Tape::new();
        let (dist, value) = self.dist(&mut tape, obs);
        let action = dist.sample(&tape, rng);
        let lp = dist.log_prob(&mut tape, &action);
        ActionSample {
            action: action.as_slice().to_vec(),
            log_prob: tape.value(lp).get(0, 0),
            value: tape.value(value).get(0, 0),
        }
    }

    fn act_greedy(&self, obs: &DdrObs) -> Vec<f64> {
        let mut tape = Tape::new();
        let (dist, _) = self.dist(&mut tape, obs);
        dist.mode(&tape).as_slice().to_vec()
    }

    fn evaluate(&self, tape: &mut Tape, obs: &DdrObs, action: &[f64]) -> Evaluation {
        let (dist, value) = self.dist(tape, obs);
        let a = Matrix::row_vector(action.to_vec());
        let log_prob = dist.log_prob(tape, &a);
        let entropy = dist.entropy(tape);
        Evaluation {
            log_prob,
            entropy,
            value,
        }
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl crate::policies::BatchGreedy for GnnIterativePolicy {
    // Each observation here targets one edge of an iterative rollout,
    // so there is no whole-graph batch to build; loop per observation
    // (trivially bit-identical).
    fn act_greedy_batch(&self, obs: &[DdrObs]) -> Vec<Vec<f64>> {
        obs.iter().map(|o| self.act_greedy(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{standard_sequences, DdrEnvConfig, GraphContext};
    use crate::env_iterative::IterativeDdrEnv;
    use gddr_net::topology::zoo;
    use gddr_rl::Env;
    use gddr_rng::SeedableRng;

    fn setup() -> (GnnIterativePolicy, IterativeDdrEnv, StdRng) {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 1, 5, 3, &mut rng);
        let env = IterativeDdrEnv::new(
            GraphContext::new(g, seqs),
            DdrEnvConfig {
                memory: 2,
                ..Default::default()
            },
        );
        let config = GnnPolicyConfig {
            memory: 2,
            latent: 8,
            hidden: 16,
            message_steps: 2,
            layer_norm: false,
        };
        (GnnIterativePolicy::new(&config, -0.5, &mut rng), env, rng)
    }

    #[test]
    fn actions_are_pairs() {
        let (policy, mut env, mut rng) = setup();
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        assert_eq!(sample.action.len(), 2);
        let s = env.step(&sample.action, &mut rng);
        assert_eq!(s.reward, 0.0); // first sub-step
    }

    #[test]
    fn full_episode_with_policy() {
        let (policy, mut env, mut rng) = setup();
        let mut obs = env.reset(&mut rng);
        let mut done = false;
        let mut total = 0.0;
        let mut guard = 0;
        while !done {
            let action = policy.act(&obs, &mut rng).action;
            let s = env.step(&action, &mut rng);
            total += s.reward;
            obs = s.obs;
            done = s.done;
            guard += 1;
            assert!(guard < 10_000);
        }
        assert!(total < 0.0);
    }

    #[test]
    fn target_edge_influences_the_action_mean() {
        // The observation tagging must reach the global output: two
        // observations differing only in the target edge should give
        // different means.
        let (policy, mut env, mut rng) = setup();
        let obs0 = env.reset(&mut rng);
        let mut obs1 = obs0.clone();
        let m_e = obs0.structure.num_edges;
        let mut ef = gddr_nn::Matrix::zeros(m_e, 3);
        ef.set(1, 2, 1.0); // tag edge 1 instead of edge 0
        obs1.edge_feats = ef;
        let a0 = policy.act_greedy(&obs0);
        let a1 = policy.act_greedy(&obs1);
        assert!(
            (a0[0] - a1[0]).abs() > 1e-12,
            "tagging is invisible to the policy"
        );
    }

    #[test]
    fn generalises_across_graph_sizes() {
        let (policy, _, mut rng) = setup();
        for name in ["janet", "nsfnet"] {
            let g = zoo::by_name(name).unwrap();
            let seqs = standard_sequences(&g, 1, 4, 2, &mut rng);
            let mut env = IterativeDdrEnv::new(
                GraphContext::new(g, seqs),
                DdrEnvConfig {
                    memory: 2,
                    ..Default::default()
                },
            );
            let obs = env.reset(&mut rng);
            let action = policy.act_greedy(&obs);
            assert_eq!(action.len(), 2);
            env.step(&action, &mut rng);
        }
    }

    #[test]
    fn evaluate_is_consistent_with_act() {
        let (policy, mut env, mut rng) = setup();
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        let mut tape = Tape::new();
        let eval = policy.evaluate(&mut tape, &obs, &sample.action);
        assert!((tape.value(eval.log_prob).get(0, 0) - sample.log_prob).abs() < 1e-9);
        assert!((tape.value(eval.value).get(0, 0) - sample.value).abs() < 1e-9);
    }
}
