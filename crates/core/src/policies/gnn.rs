//! The one-shot GNN policy (paper §VII-A, Fig. 5).
//!
//! An encode-process-decode graph network reads the per-node demand
//! aggregates (Eq. 4) and emits one weight per edge (Eq. 5) as the mean
//! of a diagonal Gaussian; the value estimate is decoded from the
//! global attribute. The parameter count is independent of the graph,
//! so a trained policy applies unchanged to other topologies.

use gddr_rng::rngs::StdRng;

use gddr_gnn::{EncodeProcessDecode, EpdConfig, GraphBatch, GraphFeatures, GraphStructure};
use gddr_nn::dist::DiagGaussian;
use gddr_nn::{Matrix, ParamId, ParamStore, Tape, Var};
use gddr_rl::{ActionSample, Evaluation, Policy};

use crate::obs::DdrObs;

/// Architecture hyperparameters shared by both GNN policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnPolicyConfig {
    /// Demand-history length `m` (node input width is `2m`).
    pub memory: usize,
    /// Latent feature width.
    pub latent: usize,
    /// Hidden width of every MLP inside the graph network.
    pub hidden: usize,
    /// Message-passing steps of the core block.
    pub message_steps: usize,
    /// Layer-normalise the latents after every message-passing step.
    pub layer_norm: bool,
}

impl Default for GnnPolicyConfig {
    fn default() -> Self {
        GnnPolicyConfig {
            memory: 5,
            latent: 16,
            hidden: 32,
            message_steps: 3,
            layer_norm: false,
        }
    }
}

/// One-shot GNN policy: all `|E|` edge weights in a single action.
#[derive(Debug, Clone)]
pub struct GnnPolicy {
    store: ParamStore,
    net: EncodeProcessDecode,
    log_std: ParamId,
    config: GnnPolicyConfig,
}

impl GnnPolicy {
    /// Builds the policy.
    pub fn new(config: &GnnPolicyConfig, init_log_std: f64, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let epd = EpdConfig {
            node_in: 2 * config.memory,
            edge_in: 3,
            global_in: 1,
            node_out: 1,
            edge_out: 1,
            global_out: 1,
            latent: config.latent,
            hidden: config.hidden,
            message_steps: config.message_steps,
            layer_norm: config.layer_norm,
        };
        let net = EncodeProcessDecode::new(&mut store, "gnn_policy", &epd, rng);
        // A single state-independent log-std shared by every edge, so
        // exploration scale transfers across graph sizes.
        let log_std = store.register("log_std", Matrix::from_vec(1, 1, vec![init_log_std]));
        GnnPolicy {
            store,
            net,
            log_std,
            config: *config,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GnnPolicyConfig {
        &self.config
    }

    /// Total trainable scalars (graph-size independent; see §IX).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Serialises the parameters.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, w: impl std::io::Write) -> Result<(), gddr_nn::params::ParamIoError> {
        self.store.save(w)
    }

    /// Restores parameters saved by [`GnnPolicy::save`].
    ///
    /// # Errors
    ///
    /// Fails on layout mismatch or corrupt data.
    pub fn load(&mut self, r: impl std::io::Read) -> Result<(), gddr_nn::params::ParamIoError> {
        self.store.load(r)
    }

    /// Runs the network and returns the Gaussian over edge weights plus
    /// the value estimate.
    fn dist(&self, tape: &mut Tape, obs: &DdrObs) -> (DiagGaussian, Var) {
        let features = GraphFeatures {
            nodes: obs.node_feats.clone(),
            edges: obs.edge_feats.clone(),
            globals: obs.globals.clone(),
        };
        let out = self
            .net
            .forward(tape, &self.store, &obs.structure, &features);
        let m_e = obs.structure.num_edges;
        // Edge outputs are m×1; the Gaussian wants a 1×m mean row.
        let mean = tape.reshape(out.edges, 1, m_e);
        // Broadcast the scalar log-std across the row via matmul with a
        // ones row (differentiable w.r.t. the scalar).
        let scalar = tape.param(&self.store, self.log_std);
        let ones = tape.constant(Matrix::full(1, m_e, 1.0));
        let log_std = tape.matmul(scalar, ones);
        let value = out.globals;
        (DiagGaussian::new(tape, mean, log_std), value)
    }
}

impl Policy for GnnPolicy {
    type Obs = DdrObs;

    fn act(&self, obs: &DdrObs, rng: &mut StdRng) -> ActionSample {
        let mut tape = Tape::new();
        let (dist, value) = self.dist(&mut tape, obs);
        let action = dist.sample(&tape, rng);
        let lp = dist.log_prob(&mut tape, &action);
        ActionSample {
            action: action.as_slice().to_vec(),
            log_prob: tape.value(lp).get(0, 0),
            value: tape.value(value).get(0, 0),
        }
    }

    fn act_greedy(&self, obs: &DdrObs) -> Vec<f64> {
        let mut tape = Tape::new();
        let (dist, _) = self.dist(&mut tape, obs);
        dist.mode(&tape).as_slice().to_vec()
    }

    fn evaluate(&self, tape: &mut Tape, obs: &DdrObs, action: &[f64]) -> Evaluation {
        let (dist, value) = self.dist(tape, obs);
        let a = Matrix::row_vector(action.to_vec());
        let log_prob = dist.log_prob(tape, &a);
        let entropy = dist.entropy(tape);
        Evaluation {
            log_prob,
            entropy,
            value,
        }
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl crate::policies::BatchGreedy for GnnPolicy {
    /// One block-diagonal forward over all observations. The greedy
    /// action is the mean — the decoded m×1 edge column — so slicing
    /// the batched edge output per graph reproduces
    /// [`Policy::act_greedy`] bit-for-bit
    /// ([`GraphBatch`] guarantees the forward itself is bit-identical).
    fn act_greedy_batch(&self, obs: &[DdrObs]) -> Vec<Vec<f64>> {
        if obs.is_empty() {
            return Vec::new();
        }
        let structures: Vec<&GraphStructure> = obs.iter().map(|o| o.structure.as_ref()).collect();
        let batch = GraphBatch::new(&structures);
        let features: Vec<GraphFeatures> = obs
            .iter()
            .map(|o| GraphFeatures {
                nodes: o.node_feats.clone(),
                edges: o.edge_feats.clone(),
                globals: o.globals.clone(),
            })
            .collect();
        let feat_refs: Vec<&GraphFeatures> = features.iter().collect();
        let packed = batch.batch_features(&feat_refs);
        let mut tape = Tape::new();
        let out = self
            .net
            .forward_batched(&mut tape, &self.store, &batch, &packed);
        batch
            .unbatch_edges(tape.value(out.edges))
            .into_iter()
            .map(|m| m.as_slice().to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{standard_sequences, DdrEnvConfig, GraphContext};
    use crate::DdrEnv;
    use gddr_net::topology::zoo;
    use gddr_rl::Env;
    use gddr_rng::SeedableRng;

    fn policy_and_env(graph_name: &str, memory: usize) -> (GnnPolicy, DdrEnv, StdRng) {
        let g = gddr_net::topology::zoo::by_name(graph_name).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 1, memory + 3, 3, &mut rng);
        let env = DdrEnv::new(
            GraphContext::new(g, seqs),
            DdrEnvConfig {
                memory,
                ..Default::default()
            },
        );
        let config = GnnPolicyConfig {
            memory,
            latent: 8,
            hidden: 16,
            message_steps: 2,
            layer_norm: false,
        };
        let policy = GnnPolicy::new(&config, -0.5, &mut rng);
        (policy, env, rng)
    }

    #[test]
    fn action_length_matches_graph() {
        let (policy, mut env, mut rng) = policy_and_env("cesnet", 2);
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        assert_eq!(sample.action.len(), obs.structure.num_edges);
        let s = env.step(&sample.action, &mut rng);
        assert!(s.reward < 0.0);
    }

    #[test]
    fn one_policy_runs_on_different_graphs() {
        // The headline property: the same trained parameters apply to
        // other topologies with no change.
        let (policy, _, mut rng) = policy_and_env("cesnet", 2);
        for name in ["abilene", "geant"] {
            let g = zoo::by_name(name).unwrap();
            let seqs = standard_sequences(&g, 1, 5, 3, &mut rng);
            let mut env = DdrEnv::new(
                GraphContext::new(g.clone(), seqs),
                DdrEnvConfig {
                    memory: 2,
                    ..Default::default()
                },
            );
            let obs = env.reset(&mut rng);
            let action = policy.act_greedy(&obs);
            assert_eq!(action.len(), g.num_edges());
            let s = env.step(&action, &mut rng);
            assert!(s.reward < 0.0);
        }
    }

    #[test]
    fn evaluate_is_consistent_with_act() {
        let (policy, mut env, mut rng) = policy_and_env("cesnet", 2);
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        let mut tape = Tape::new();
        let eval = policy.evaluate(&mut tape, &obs, &sample.action);
        assert!((tape.value(eval.log_prob).get(0, 0) - sample.log_prob).abs() < 1e-9);
        assert!((tape.value(eval.value).get(0, 0) - sample.value).abs() < 1e-9);
    }

    #[test]
    fn log_std_gradient_reaches_scalar() {
        let (mut policy, mut env, mut rng) = policy_and_env("cesnet", 2);
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        let mut tape = Tape::new();
        let eval = policy.evaluate(&mut tape, &obs, &sample.action);
        let store = policy.params_mut();
        store.zero_grads();
        tape.backward(eval.log_prob, store);
        let ls_id = store
            .iter()
            .find(|(_, name, _)| *name == "log_std")
            .map(|(id, _, _)| id)
            .unwrap();
        assert!(store.grad(ls_id).norm() > 0.0, "log_std got no gradient");
    }

    #[test]
    fn act_greedy_batch_matches_sequential_bitwise() {
        use crate::policies::BatchGreedy;
        let (policy, _, mut rng) = policy_and_env("cesnet", 2);
        let mut observations = Vec::new();
        for name in ["cesnet", "abilene", "geant", "abilene"] {
            let g = zoo::by_name(name).unwrap();
            let seqs = standard_sequences(&g, 1, 5, 3, &mut rng);
            let mut env = DdrEnv::new(
                GraphContext::new(g, seqs),
                DdrEnvConfig {
                    memory: 2,
                    ..Default::default()
                },
            );
            observations.push(env.reset(&mut rng));
        }
        let sequential: Vec<Vec<f64>> = observations.iter().map(|o| policy.act_greedy(o)).collect();
        let batched = policy.act_greedy_batch(&observations);
        // Exact equality: serving coalesces requests into one batch and
        // must answer exactly as if each were served alone.
        assert_eq!(batched, sequential);
        assert!(policy.act_greedy_batch(&[]).is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let (mut policy, mut env, mut rng) = policy_and_env("cesnet", 2);
        let obs = env.reset(&mut rng);
        let before = policy.act_greedy(&obs);
        let mut buf = Vec::new();
        policy.save(&mut buf).unwrap();
        // Perturb the edge-decoder output bias (directly shifts every
        // edge weight), then restore.
        let id = policy
            .params()
            .iter()
            .find(|(_, name, _)| *name == "gnn_policy.dec_edges.l1.bias")
            .map(|(id, _, _)| id)
            .expect("decoder bias exists");
        policy.params_mut().value_mut(id).as_mut_slice()[0] += 1.0;
        assert_ne!(policy.act_greedy(&obs), before);
        policy.load(buf.as_slice()).unwrap();
        assert_eq!(policy.act_greedy(&obs), before);
    }
}
