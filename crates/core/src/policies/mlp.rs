//! The MLP baseline policy of Valadarsky et al. (paper §VII, Fig. 4).
//!
//! A plain fully connected actor-critic over the flattened demand
//! history. Its input and output sizes are tied to one topology
//! (`m·|V|²` in, `|E|` out) — the limitation that motivates the GNN
//! policies.

use gddr_rng::rngs::StdRng;

use gddr_nn::{ParamStore, Tape};
use gddr_rl::policy::MlpGaussianPolicy;
use gddr_rl::{ActionSample, Evaluation, Policy};

use crate::obs::DdrObs;

/// MLP actor-critic over [`DdrObs::flat`] observations.
#[derive(Debug, Clone)]
pub struct MlpPolicy {
    inner: MlpGaussianPolicy,
}

impl MlpPolicy {
    /// Builds the policy for a fixed topology.
    ///
    /// `memory` and `num_nodes` determine the observation width
    /// (`memory · num_nodes²`); `num_edges` the action width.
    pub fn new(
        memory: usize,
        num_nodes: usize,
        num_edges: usize,
        hidden: &[usize],
        init_log_std: f64,
        rng: &mut StdRng,
    ) -> Self {
        let obs_dim = memory * num_nodes * num_nodes;
        MlpPolicy {
            inner: MlpGaussianPolicy::new(obs_dim, num_edges, hidden, init_log_std, rng),
        }
    }

    /// Observation width this policy is bound to.
    pub fn obs_dim(&self) -> usize {
        self.inner.obs_dim()
    }

    /// Action width (`|E|`).
    pub fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }
}

impl Policy for MlpPolicy {
    type Obs = DdrObs;

    fn act(&self, obs: &DdrObs, rng: &mut StdRng) -> ActionSample {
        self.inner.act(&obs.flat, rng)
    }

    fn act_greedy(&self, obs: &DdrObs) -> Vec<f64> {
        self.inner.act_greedy(&obs.flat)
    }

    fn evaluate(&self, tape: &mut Tape, obs: &DdrObs, action: &[f64]) -> Evaluation {
        self.inner.evaluate(tape, &obs.flat, action)
    }

    fn params(&self) -> &ParamStore {
        self.inner.params()
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        self.inner.params_mut()
    }
}

impl crate::policies::BatchGreedy for MlpPolicy {
    // The MLP forward has no cross-row structure to exploit, so the
    // batch is just the per-observation loop (trivially bit-identical).
    fn act_greedy_batch(&self, obs: &[DdrObs]) -> Vec<Vec<f64>> {
        obs.iter().map(|o| self.act_greedy(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{standard_sequences, DdrEnvConfig, GraphContext};
    use crate::DdrEnv;
    use gddr_net::topology::zoo;
    use gddr_rl::Env;
    use gddr_rng::SeedableRng;

    #[test]
    fn mlp_policy_matches_env_dimensions() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 1, 6, 3, &mut rng);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let mut env = DdrEnv::new(GraphContext::new(g.clone(), seqs), config);
        let policy = MlpPolicy::new(2, g.num_nodes(), g.num_edges(), &[16], -0.5, &mut rng);
        assert_eq!(policy.obs_dim(), 2 * 36);
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        assert_eq!(sample.action.len(), g.num_edges());
        let s = env.step(&sample.action, &mut rng);
        assert!(s.reward < 0.0);
    }

    #[test]
    fn evaluate_matches_act_statistics() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(1);
        let seqs = standard_sequences(&g, 1, 6, 3, &mut rng);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let mut env = DdrEnv::new(GraphContext::new(g.clone(), seqs), config);
        let policy = MlpPolicy::new(2, g.num_nodes(), g.num_edges(), &[8], -0.3, &mut rng);
        let obs = env.reset(&mut rng);
        let sample = policy.act(&obs, &mut rng);
        let mut tape = Tape::new();
        let eval = policy.evaluate(&mut tape, &obs, &sample.action);
        assert!((tape.value(eval.log_prob).get(0, 0) - sample.log_prob).abs() < 1e-9);
        assert!((tape.value(eval.value).get(0, 0) - sample.value).abs() < 1e-9);
    }
}
