//! Policy evaluation: mean `U_agent / U_opt` ratios over held-out
//! demand sequences — the bar heights of the paper's Figs. 6 and 8 —
//! plus the shortest-path baseline ratio (the dotted line).
//!
//! Every evaluation entry point returns `Result<_, CoreError>`: these
//! paths are reachable from serve requests (`gddr-serve` routes live
//! traffic matrices through the same ratio machinery), so malformed
//! input must surface as a typed error rather than abort the caller.

use gddr_rl::Policy;
use gddr_routing::baselines::{ecmp_routing, shortest_path_routing};
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_routing::Routing;
use gddr_ser::{FromJson, Json, JsonError, ToJson};
use gddr_traffic::DemandMatrix;

use crate::env::{DdrEnvConfig, GraphContext};
use crate::env_iterative::IterativeDdrEnv;
use crate::error::CoreError;
use crate::obs::{flat_features, node_features, DdrObs, DemandHistory};

/// Summary statistics of utilisation ratios across evaluated demand
/// matrices (1.0 = optimal; lower is better).
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Mean ratio (the bar height).
    pub mean_ratio: f64,
    /// Standard deviation of the ratios.
    pub std_ratio: f64,
    /// Every individual ratio.
    pub ratios: Vec<f64>,
}

impl ToJson for EvalResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mean_ratio", self.mean_ratio.to_json()),
            ("std_ratio", self.std_ratio.to_json()),
            ("ratios", self.ratios.to_json()),
        ])
    }
}

impl FromJson for EvalResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EvalResult {
            mean_ratio: FromJson::from_json(json.field("mean_ratio")?)?,
            std_ratio: FromJson::from_json(json.field("std_ratio")?)?,
            ratios: FromJson::from_json(json.field("ratios")?)?,
        })
    }
}

impl EvalResult {
    /// Aggregates raw ratios.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyEvaluation`] if `ratios` is empty.
    pub fn from_ratios(ratios: Vec<f64>) -> Result<Self, CoreError> {
        if ratios.is_empty() {
            return Err(CoreError::EmptyEvaluation);
        }
        let n = ratios.len() as f64;
        let mean = ratios.iter().sum::<f64>() / n;
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        Ok(EvalResult {
            mean_ratio: mean,
            std_ratio: var.sqrt(),
            ratios,
        })
    }
}

/// Checks that every sequence is non-empty relative to the memory.
fn check_sequences(test_sequences: &[Vec<DemandMatrix>], memory: usize) -> Result<(), CoreError> {
    if test_sequences.is_empty() {
        return Err(CoreError::EmptyEvaluation);
    }
    for seq in test_sequences {
        if seq.len() <= memory {
            return Err(CoreError::SequenceTooShort {
                len: seq.len(),
                memory,
            });
        }
    }
    Ok(())
}

/// Walks one sequence with a one-shot policy, returning the ratio for
/// every routed demand matrix.
fn walk_oneshot<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    seq: &[DemandMatrix],
) -> Result<Vec<f64>, CoreError> {
    let n = ctx.graph.num_nodes();
    let m_e = ctx.graph.num_edges();
    let mut history = DemandHistory::new(config.memory);
    for dm in &seq[..config.memory] {
        history.push(dm.clone());
    }
    let mut ratios = Vec::new();
    for dm in &seq[config.memory..] {
        let obs = DdrObs {
            structure: std::sync::Arc::clone(&ctx.structure),
            node_feats: node_features(&history, n, config.memory),
            edge_feats: gddr_nn::Matrix::zeros(m_e, 3),
            globals: gddr_nn::Matrix::zeros(1, 1),
            flat: flat_features(&history, n, config.memory),
            target_edge: None,
        };
        let action = policy.act_greedy(&obs);
        let weights = config.try_action_to_weights(&action, m_e)?;
        let routing = softmin_routing(&ctx.graph, &weights, &config.softmin)
            .map_err(|e| CoreError::Routing(format!("{e:?}")))?;
        ratios.push(ctx.try_ratio(&routing, dm)?.ratio);
        history.push(dm.clone());
    }
    Ok(ratios)
}

/// Evaluates a one-shot policy (MLP or GNN) deterministically on test
/// sequences.
///
/// # Errors
///
/// [`CoreError::EmptyEvaluation`] on empty input,
/// [`CoreError::SequenceTooShort`] if any sequence is not longer than
/// the memory, plus any routing/oracle failure from the walked steps.
pub fn eval_oneshot<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    check_sequences(test_sequences, config.memory)?;
    let mut ratios = Vec::new();
    for seq in test_sequences {
        ratios.extend(walk_oneshot(ctx, config, policy, seq)?);
    }
    EvalResult::from_ratios(ratios)
}

/// Evaluates an iterative policy deterministically on test sequences.
///
/// # Errors
///
/// Same conditions as [`eval_oneshot`].
pub fn eval_iterative<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    check_sequences(test_sequences, config.memory)?;
    use gddr_rl::Env;
    use gddr_rng::SeedableRng;
    let mut ratios = Vec::new();
    for seq in test_sequences {
        // A single-sequence env makes the reset deterministic.
        let eval_ctx = GraphContext::new(ctx.graph.clone(), vec![seq.clone()]);
        let mut env = IterativeDdrEnv::new(eval_ctx, *config);
        let mut rng = gddr_rng::rngs::StdRng::seed_from_u64(0);
        let mut obs = env.reset(&mut rng);
        loop {
            let action = policy.act_greedy(&obs);
            let step = env.step(&action, &mut rng);
            if step.reward != 0.0 {
                ratios.push(-step.reward);
            }
            if step.done {
                break;
            }
            obs = step.obs;
        }
    }
    EvalResult::from_ratios(ratios)
}

/// Evaluates a fixed (demand-independent) routing over test sequences.
///
/// # Errors
///
/// [`CoreError::EmptyEvaluation`] on empty input, plus any
/// simulation/oracle failure on the evaluated matrices.
pub fn eval_fixed_routing(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    routing: &Routing,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    if test_sequences.is_empty() {
        return Err(CoreError::EmptyEvaluation);
    }
    let mut ratios = Vec::new();
    for seq in test_sequences {
        for dm in &seq[config.memory.min(seq.len())..] {
            ratios.push(ctx.try_ratio(routing, dm)?.ratio);
        }
    }
    EvalResult::from_ratios(ratios)
}

/// Unit-weight single shortest-path routing for `graph` — the fixed
/// strategy behind the paper's dotted baseline, also the last rung of
/// `gddr-serve`'s degradation ladder (demand-independent, so it can be
/// precomputed once and served forever).
pub fn unit_shortest_path_routing(graph: &gddr_net::Graph) -> Routing {
    let w = vec![1.0; graph.num_edges()];
    shortest_path_routing(graph, &w)
}

/// Unit-weight ECMP routing for `graph` — the equal-split baseline
/// strategy, demand-independent like its shortest-path sibling.
pub fn unit_ecmp_routing(graph: &gddr_net::Graph) -> Routing {
    let w = vec![1.0; graph.num_edges()];
    ecmp_routing(graph, &w)
}

/// The shortest-path baseline ratio (the dotted line in Figs. 6/8):
/// unit-weight single shortest-path routing, held fixed for all demand
/// matrices.
///
/// # Errors
///
/// As [`eval_fixed_routing`].
pub fn shortest_path_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    let routing = unit_shortest_path_routing(&ctx.graph);
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

/// ECMP baseline ratio (an extension beyond the paper's dotted line).
///
/// # Errors
///
/// As [`eval_fixed_routing`].
pub fn ecmp_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    let routing = unit_ecmp_routing(&ctx.graph);
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

/// The predict-then-route baseline the paper argues against (§II-A):
/// predict the next demand matrix as the average of the history, solve
/// the multicommodity-flow LP for the *prediction*, and route the
/// actual matrix with the resulting strategy. "This does not lead to
/// good results when the predictions are incorrect."
///
/// # Errors
///
/// [`CoreError::EmptyEvaluation`]/[`CoreError::SequenceTooShort`] on
/// malformed input, [`CoreError::Oracle`] if the prediction's LP has no
/// solution.
pub fn prediction_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    check_sequences(test_sequences, config.memory)?;
    let mut ratios = Vec::new();
    for seq in test_sequences {
        let mut history = DemandHistory::new(config.memory);
        for dm in &seq[..config.memory] {
            history.push(dm.clone());
        }
        for dm in &seq[config.memory..] {
            let window: Vec<&DemandMatrix> = history.iter().collect();
            let predicted = gddr_traffic::sequence::average(&window);
            let sol = gddr_lp::mcf::min_max_utilisation(&ctx.graph, &predicted)
                .map_err(|e| CoreError::Oracle(format!("{e:?}")))?;
            let routing = Routing::from_destination_flows(&ctx.graph, &sol.flows);
            // The predicted-optimal routing may not cover commodities
            // absent from the prediction; with bimodal demands every
            // commodity is active, so simulation succeeds.
            ratios.push(ctx.try_ratio(&routing, dm)?.ratio);
            history.push(dm.clone());
        }
    }
    EvalResult::from_ratios(ratios)
}

/// Ratio of untrained softmin routing with uniform weights — the
/// "no-agent" reference point for softmin translation quality.
///
/// # Errors
///
/// As [`eval_fixed_routing`].
pub fn uniform_softmin_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> Result<EvalResult, CoreError> {
    let w = vec![1.0; ctx.graph.num_edges()];
    let routing = softmin_routing(&ctx.graph, &w, &SoftminConfig::default())
        .map_err(|e| CoreError::Routing(format!("{e:?}")))?;
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::standard_sequences;
    use crate::policies::{GnnPolicy, GnnPolicyConfig, MlpPolicy};
    use gddr_net::topology::zoo;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    fn fixture() -> (GraphContext, DdrEnvConfig, Vec<Vec<DemandMatrix>>, StdRng) {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let train = standard_sequences(&g, 1, 6, 3, &mut rng);
        let test = standard_sequences(&g, 2, 6, 3, &mut rng);
        let ctx = GraphContext::new(g, train);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        (ctx, config, test, rng)
    }

    #[test]
    fn ratios_are_at_least_one() {
        let (ctx, config, test, mut rng) = fixture();
        let gnn = GnnPolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let res = eval_oneshot(&ctx, &config, &gnn, &test).unwrap();
        assert_eq!(res.ratios.len(), 2 * 4);
        assert!(res.mean_ratio >= 1.0 - 1e-6, "cannot beat the optimum");
        assert!(res.std_ratio >= 0.0);
    }

    #[test]
    fn mlp_and_baselines_evaluate() {
        let (ctx, config, test, mut rng) = fixture();
        let mlp = MlpPolicy::new(
            2,
            ctx.graph.num_nodes(),
            ctx.graph.num_edges(),
            &[8],
            -0.5,
            &mut rng,
        );
        let res = eval_oneshot(&ctx, &config, &mlp, &test).unwrap();
        assert!(res.mean_ratio >= 1.0 - 1e-6);
        let sp = shortest_path_baseline(&ctx, &config, &test).unwrap();
        assert!(sp.mean_ratio >= 1.0 - 1e-6);
        let ecmp = ecmp_baseline(&ctx, &config, &test).unwrap();
        // ECMP load-balances, so it should not be worse than single-SP
        // on average by much; sanity: both finite.
        assert!(ecmp.mean_ratio.is_finite() && sp.mean_ratio.is_finite());
        let uni = uniform_softmin_baseline(&ctx, &config, &test).unwrap();
        assert!(uni.mean_ratio >= 1.0 - 1e-6);
    }

    #[test]
    fn iterative_eval_produces_one_ratio_per_dm() {
        let (ctx, config, test, mut rng) = fixture();
        let policy = crate::policies::GnnIterativePolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let res = eval_iterative(&ctx, &config, &policy, &test).unwrap();
        assert_eq!(res.ratios.len(), 2 * 4);
        assert!(res.mean_ratio >= 1.0 - 1e-6);
    }

    #[test]
    fn prediction_baseline_is_good_on_constant_traffic() {
        // If traffic never changes, predicting the average is exact and
        // the predict-then-route baseline is optimal (ratio 1).
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(7);
        let base = gddr_traffic::gen::bimodal(
            g.num_nodes(),
            &gddr_traffic::gen::BimodalParams::default(),
            &mut rng,
        );
        let constant: Vec<DemandMatrix> = vec![base; 6];
        let ctx = GraphContext::new(g, vec![constant.clone()]);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let res = prediction_baseline(&ctx, &config, &[constant]).unwrap();
        assert!(
            (res.mean_ratio - 1.0).abs() < 1e-4,
            "constant traffic must be routed optimally, got {}",
            res.mean_ratio
        );
    }

    #[test]
    fn prediction_baseline_degrades_on_varying_traffic() {
        let (ctx, config, test, _) = fixture();
        let res = prediction_baseline(&ctx, &config, &test).unwrap();
        assert!(res.mean_ratio >= 1.0 - 1e-6);
        assert!(res.mean_ratio.is_finite());
    }

    #[test]
    fn eval_is_deterministic() {
        let (ctx, config, test, mut rng) = fixture();
        let gnn = GnnPolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let a = eval_oneshot(&ctx, &config, &gnn, &test).unwrap();
        let b = eval_oneshot(&ctx, &config, &gnn, &test).unwrap();
        assert_eq!(a.ratios, b.ratios);
    }

    #[test]
    fn from_ratios_statistics() {
        let r = EvalResult::from_ratios(vec![1.0, 2.0, 3.0]).unwrap();
        assert!((r.mean_ratio - 2.0).abs() < 1e-12);
        assert!((r.std_ratio - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        let (ctx, config, test, mut rng) = fixture();
        assert!(matches!(
            EvalResult::from_ratios(vec![]),
            Err(CoreError::EmptyEvaluation)
        ));
        let mlp = MlpPolicy::new(
            2,
            ctx.graph.num_nodes(),
            ctx.graph.num_edges(),
            &[8],
            -0.5,
            &mut rng,
        );
        assert!(matches!(
            eval_oneshot(&ctx, &config, &mlp, &[]),
            Err(CoreError::EmptyEvaluation)
        ));
        let short = vec![test[0][..2].to_vec()];
        assert!(matches!(
            eval_oneshot(&ctx, &config, &mlp, &short),
            Err(CoreError::SequenceTooShort { len: 2, memory: 2 })
        ));
        assert!(matches!(
            prediction_baseline(&ctx, &config, &short),
            Err(CoreError::SequenceTooShort { len: 2, memory: 2 })
        ));
        // A fixed routing against a mismatched demand matrix degrades
        // to a typed error through the simulator.
        let routing = unit_shortest_path_routing(&ctx.graph);
        let bad = vec![vec![DemandMatrix::zeros(ctx.graph.num_nodes() + 1); 4]];
        assert!(matches!(
            eval_fixed_routing(&ctx, &config, &routing, &bad),
            Err(CoreError::DemandMismatch { .. })
        ));
    }

    #[test]
    fn unit_baseline_routings_are_valid() {
        let g = zoo::cesnet();
        assert!(unit_shortest_path_routing(&g).validate(&g).is_empty());
        assert!(unit_ecmp_routing(&g).validate(&g).is_empty());
    }
}
