//! Policy evaluation: mean `U_agent / U_opt` ratios over held-out
//! demand sequences — the bar heights of the paper's Figs. 6 and 8 —
//! plus the shortest-path baseline ratio (the dotted line).

use gddr_rl::Policy;
use gddr_routing::baselines::{ecmp_routing, shortest_path_routing};
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_routing::Routing;
use gddr_ser::{FromJson, Json, JsonError, ToJson};
use gddr_traffic::DemandMatrix;

use crate::env::{DdrEnvConfig, GraphContext};
use crate::env_iterative::IterativeDdrEnv;
use crate::obs::{flat_features, node_features, DdrObs, DemandHistory};

/// Summary statistics of utilisation ratios across evaluated demand
/// matrices (1.0 = optimal; lower is better).
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Mean ratio (the bar height).
    pub mean_ratio: f64,
    /// Standard deviation of the ratios.
    pub std_ratio: f64,
    /// Every individual ratio.
    pub ratios: Vec<f64>,
}

impl ToJson for EvalResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mean_ratio", self.mean_ratio.to_json()),
            ("std_ratio", self.std_ratio.to_json()),
            ("ratios", self.ratios.to_json()),
        ])
    }
}

impl FromJson for EvalResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EvalResult {
            mean_ratio: FromJson::from_json(json.field("mean_ratio")?)?,
            std_ratio: FromJson::from_json(json.field("std_ratio")?)?,
            ratios: FromJson::from_json(json.field("ratios")?)?,
        })
    }
}

impl EvalResult {
    /// Aggregates raw ratios.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty.
    pub fn from_ratios(ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty(), "no ratios to aggregate");
        let n = ratios.len() as f64;
        let mean = ratios.iter().sum::<f64>() / n;
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        EvalResult {
            mean_ratio: mean,
            std_ratio: var.sqrt(),
            ratios,
        }
    }
}

/// Walks one sequence with a one-shot policy, returning the ratio for
/// every routed demand matrix.
fn walk_oneshot<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    seq: &[DemandMatrix],
) -> Vec<f64> {
    let n = ctx.graph.num_nodes();
    let m_e = ctx.graph.num_edges();
    let mut history = DemandHistory::new(config.memory);
    for dm in &seq[..config.memory] {
        history.push(dm.clone());
    }
    let mut ratios = Vec::new();
    for dm in &seq[config.memory..] {
        let obs = DdrObs {
            structure: std::sync::Arc::clone(&ctx.structure),
            node_feats: node_features(&history, n, config.memory),
            edge_feats: gddr_nn::Matrix::zeros(m_e, 3),
            globals: gddr_nn::Matrix::zeros(1, 1),
            flat: flat_features(&history, n, config.memory),
            target_edge: None,
        };
        let action = policy.act_greedy(&obs);
        let weights = config.action_to_weights(&action, m_e);
        let routing = softmin_routing(&ctx.graph, &weights, &config.softmin)
            .expect("action_to_weights yields positive finite weights");
        ratios.push(ctx.ratio(&routing, dm));
        history.push(dm.clone());
    }
    ratios
}

/// Evaluates a one-shot policy (MLP or GNN) deterministically on test
/// sequences.
///
/// # Panics
///
/// Panics if `test_sequences` is empty or any sequence is not longer
/// than the memory.
pub fn eval_oneshot<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    assert!(!test_sequences.is_empty(), "need test sequences");
    let mut ratios = Vec::new();
    for seq in test_sequences {
        assert!(seq.len() > config.memory, "sequence shorter than memory");
        ratios.extend(walk_oneshot(ctx, config, policy, seq));
    }
    EvalResult::from_ratios(ratios)
}

/// Evaluates an iterative policy deterministically on test sequences.
///
/// # Panics
///
/// Same conditions as [`eval_oneshot`].
pub fn eval_iterative<P: Policy<Obs = DdrObs>>(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    policy: &P,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    assert!(!test_sequences.is_empty(), "need test sequences");
    use gddr_rl::Env;
    use gddr_rng::SeedableRng;
    let mut ratios = Vec::new();
    for seq in test_sequences {
        assert!(seq.len() > config.memory, "sequence shorter than memory");
        // A single-sequence env makes the reset deterministic.
        let eval_ctx = GraphContext::new(ctx.graph.clone(), vec![seq.clone()]);
        let mut env = IterativeDdrEnv::new(eval_ctx, *config);
        let mut rng = gddr_rng::rngs::StdRng::seed_from_u64(0);
        let mut obs = env.reset(&mut rng);
        loop {
            let action = policy.act_greedy(&obs);
            let step = env.step(&action, &mut rng);
            if step.reward != 0.0 {
                ratios.push(-step.reward);
            }
            if step.done {
                break;
            }
            obs = step.obs;
        }
    }
    EvalResult::from_ratios(ratios)
}

/// Evaluates a fixed (demand-independent) routing over test sequences.
pub fn eval_fixed_routing(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    routing: &Routing,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    assert!(!test_sequences.is_empty(), "need test sequences");
    let mut ratios = Vec::new();
    for seq in test_sequences {
        for dm in &seq[config.memory..] {
            ratios.push(ctx.ratio(routing, dm));
        }
    }
    EvalResult::from_ratios(ratios)
}

/// The shortest-path baseline ratio (the dotted line in Figs. 6/8):
/// unit-weight single shortest-path routing, held fixed for all demand
/// matrices.
pub fn shortest_path_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    let w = vec![1.0; ctx.graph.num_edges()];
    let routing = shortest_path_routing(&ctx.graph, &w);
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

/// ECMP baseline ratio (an extension beyond the paper's dotted line).
pub fn ecmp_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    let w = vec![1.0; ctx.graph.num_edges()];
    let routing = ecmp_routing(&ctx.graph, &w);
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

/// The predict-then-route baseline the paper argues against (§II-A):
/// predict the next demand matrix as the average of the history, solve
/// the multicommodity-flow LP for the *prediction*, and route the
/// actual matrix with the resulting strategy. "This does not lead to
/// good results when the predictions are incorrect."
///
/// # Panics
///
/// Panics if `test_sequences` is empty or shorter than the memory.
pub fn prediction_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    assert!(!test_sequences.is_empty(), "need test sequences");
    let mut ratios = Vec::new();
    for seq in test_sequences {
        assert!(seq.len() > config.memory, "sequence shorter than memory");
        let mut history = DemandHistory::new(config.memory);
        for dm in &seq[..config.memory] {
            history.push(dm.clone());
        }
        for dm in &seq[config.memory..] {
            let window: Vec<&DemandMatrix> = history.iter().collect();
            let predicted = gddr_traffic::sequence::average(&window);
            let sol = gddr_lp::mcf::min_max_utilisation(&ctx.graph, &predicted)
                .expect("strongly connected graph");
            let routing = Routing::from_destination_flows(&ctx.graph, &sol.flows);
            // The predicted-optimal routing may not cover commodities
            // absent from the prediction; with bimodal demands every
            // commodity is active, so simulation succeeds.
            ratios.push(ctx.ratio(&routing, dm));
            history.push(dm.clone());
        }
    }
    EvalResult::from_ratios(ratios)
}

/// Ratio of untrained softmin routing with uniform weights — the
/// "no-agent" reference point for softmin translation quality.
pub fn uniform_softmin_baseline(
    ctx: &GraphContext,
    config: &DdrEnvConfig,
    test_sequences: &[Vec<DemandMatrix>],
) -> EvalResult {
    let w = vec![1.0; ctx.graph.num_edges()];
    let routing = softmin_routing(&ctx.graph, &w, &SoftminConfig::default())
        .expect("uniform weights are valid");
    eval_fixed_routing(ctx, config, &routing, test_sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::standard_sequences;
    use crate::policies::{GnnPolicy, GnnPolicyConfig, MlpPolicy};
    use gddr_net::topology::zoo;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    fn fixture() -> (GraphContext, DdrEnvConfig, Vec<Vec<DemandMatrix>>, StdRng) {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let train = standard_sequences(&g, 1, 6, 3, &mut rng);
        let test = standard_sequences(&g, 2, 6, 3, &mut rng);
        let ctx = GraphContext::new(g, train);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        (ctx, config, test, rng)
    }

    #[test]
    fn ratios_are_at_least_one() {
        let (ctx, config, test, mut rng) = fixture();
        let gnn = GnnPolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let res = eval_oneshot(&ctx, &config, &gnn, &test);
        assert_eq!(res.ratios.len(), 2 * 4);
        assert!(res.mean_ratio >= 1.0 - 1e-6, "cannot beat the optimum");
        assert!(res.std_ratio >= 0.0);
    }

    #[test]
    fn mlp_and_baselines_evaluate() {
        let (ctx, config, test, mut rng) = fixture();
        let mlp = MlpPolicy::new(
            2,
            ctx.graph.num_nodes(),
            ctx.graph.num_edges(),
            &[8],
            -0.5,
            &mut rng,
        );
        let res = eval_oneshot(&ctx, &config, &mlp, &test);
        assert!(res.mean_ratio >= 1.0 - 1e-6);
        let sp = shortest_path_baseline(&ctx, &config, &test);
        assert!(sp.mean_ratio >= 1.0 - 1e-6);
        let ecmp = ecmp_baseline(&ctx, &config, &test);
        // ECMP load-balances, so it should not be worse than single-SP
        // on average by much; sanity: both finite.
        assert!(ecmp.mean_ratio.is_finite() && sp.mean_ratio.is_finite());
        let uni = uniform_softmin_baseline(&ctx, &config, &test);
        assert!(uni.mean_ratio >= 1.0 - 1e-6);
    }

    #[test]
    fn iterative_eval_produces_one_ratio_per_dm() {
        let (ctx, config, test, mut rng) = fixture();
        let policy = crate::policies::GnnIterativePolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let res = eval_iterative(&ctx, &config, &policy, &test);
        assert_eq!(res.ratios.len(), 2 * 4);
        assert!(res.mean_ratio >= 1.0 - 1e-6);
    }

    #[test]
    fn prediction_baseline_is_good_on_constant_traffic() {
        // If traffic never changes, predicting the average is exact and
        // the predict-then-route baseline is optimal (ratio 1).
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(7);
        let base = gddr_traffic::gen::bimodal(
            g.num_nodes(),
            &gddr_traffic::gen::BimodalParams::default(),
            &mut rng,
        );
        let constant: Vec<DemandMatrix> = vec![base; 6];
        let ctx = GraphContext::new(g, vec![constant.clone()]);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let res = prediction_baseline(&ctx, &config, &[constant]);
        assert!(
            (res.mean_ratio - 1.0).abs() < 1e-4,
            "constant traffic must be routed optimally, got {}",
            res.mean_ratio
        );
    }

    #[test]
    fn prediction_baseline_degrades_on_varying_traffic() {
        let (ctx, config, test, _) = fixture();
        let res = prediction_baseline(&ctx, &config, &test);
        assert!(res.mean_ratio >= 1.0 - 1e-6);
        assert!(res.mean_ratio.is_finite());
    }

    #[test]
    fn eval_is_deterministic() {
        let (ctx, config, test, mut rng) = fixture();
        let gnn = GnnPolicy::new(
            &GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            -0.5,
            &mut rng,
        );
        let a = eval_oneshot(&ctx, &config, &gnn, &test);
        let b = eval_oneshot(&ctx, &config, &gnn, &test);
        assert_eq!(a.ratios, b.ratios);
    }

    #[test]
    fn from_ratios_statistics() {
        let r = EvalResult::from_ratios(vec![1.0, 2.0, 3.0]);
        assert!((r.mean_ratio - 2.0).abs() < 1e-12);
        assert!((r.std_ratio - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
