//! The three GDDR policy architectures (paper §VII).

mod gnn;
mod gnn_iterative;
mod mlp;

pub use gnn::{GnnPolicy, GnnPolicyConfig};
pub use gnn_iterative::GnnIterativePolicy;
pub use mlp::MlpPolicy;
