//! The three GDDR policy architectures (paper §VII).

mod gnn;
mod gnn_iterative;
mod mlp;

pub use gnn::{GnnPolicy, GnnPolicyConfig};
pub use gnn_iterative::GnnIterativePolicy;
pub use mlp::MlpPolicy;

use crate::obs::DdrObs;

/// Greedy inference over several observations at once.
///
/// The contract is strict: `act_greedy_batch(obs)` must be
/// **bit-identical** to calling [`gddr_rl::Policy::act_greedy`] on each
/// observation in order. The serving fleet coalesces requests into one
/// batched forward pass and relies on batch membership being
/// unobservable in the answers.
pub trait BatchGreedy {
    /// Greedy actions for every observation, in order.
    fn act_greedy_batch(&self, obs: &[DdrObs]) -> Vec<Vec<f64>>;
}
