//! The iterative environment (paper §VII-B).
//!
//! The one-shot environment's action size is `|E|`, which fixes the
//! policy's output size to one graph. The iterative scheme sets one
//! edge weight per sub-step: the observation tags each edge with its
//! current value, whether it has been set, and whether it is the edge
//! to set now (Eq. 6); the policy reads its action from the *global*
//! output (Eq. 7) — a `(weight, γ)` pair, with γ consumed on the final
//! sub-step of each demand matrix. The reward (the usual Eq. 2 ratio)
//! arrives on that final sub-step; intermediate sub-steps yield 0.

use std::sync::Arc;

use gddr_rng::rngs::StdRng;
use gddr_rng::Rng;

use gddr_nn::Matrix;
use gddr_rl::{Env, Step};
use gddr_routing::softmin::{softmin_routing, SoftminConfig};

use crate::env::{DdrEnvConfig, GraphContext};
use crate::obs::{flat_features, node_features, DdrObs, DemandHistory};

/// Range the learned softmin temperature is mapped into.
const GAMMA_RANGE: (f64, f64) = (0.5, 6.0);

/// Iterative data-driven-routing environment.
///
/// Action layout: `action[0]` is the raw weight for the tagged edge,
/// `action[1]` is the raw softmin temperature (read only on the last
/// sub-step of each demand matrix).
#[derive(Debug)]
pub struct IterativeDdrEnv {
    contexts: Vec<GraphContext>,
    config: DdrEnvConfig,
    active: usize,
    seq_idx: usize,
    /// Demand-matrix index within the sequence.
    t: usize,
    /// Which edge the next action sets.
    edge_idx: usize,
    /// Squashed weights in `[-1, 1]`, one per edge, for the current DM.
    pending: Vec<f64>,
    history: DemandHistory,
}

impl IterativeDdrEnv {
    /// Creates a single-graph environment.
    ///
    /// # Panics
    ///
    /// Panics if any sequence is not longer than the memory.
    pub fn new(ctx: GraphContext, config: DdrEnvConfig) -> Self {
        Self::new_multi(vec![ctx], config)
    }

    /// Creates a multi-graph environment: each episode runs on a
    /// randomly drawn graph — possible here because the action size is
    /// fixed at 2 regardless of the topology (the paper's motivation
    /// for the iterative design).
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or any sequence is not longer
    /// than the memory.
    pub fn new_multi(contexts: Vec<GraphContext>, config: DdrEnvConfig) -> Self {
        assert!(!contexts.is_empty(), "need at least one graph");
        for ctx in &contexts {
            for seq in &ctx.sequences {
                assert!(
                    seq.len() > config.memory,
                    "sequence length must exceed memory"
                );
            }
        }
        let pending = vec![0.0; contexts[0].graph.num_edges()];
        let history = DemandHistory::new(config.memory);
        IterativeDdrEnv {
            contexts,
            config,
            active: 0,
            seq_idx: 0,
            t: 0,
            edge_idx: 0,
            pending,
            history,
        }
    }

    /// The currently active graph context (valid after a reset).
    pub fn context(&self) -> &GraphContext {
        &self.contexts[self.active]
    }

    /// Maps a raw γ action into the learned-temperature range `[0.5, 6]`.
    pub fn action_to_gamma(a: f64) -> f64 {
        let (lo, hi) = GAMMA_RANGE;
        lo + (a.tanh() + 1.0) / 2.0 * (hi - lo)
    }

    fn observation(&self) -> DdrObs {
        let ctx = &self.contexts[self.active];
        let n = ctx.graph.num_nodes();
        let m_e = ctx.graph.num_edges();
        // Eq. 6: (current value in [-1,1] or 0, set flag, target flag).
        let mut edge_feats = Matrix::zeros(m_e, 3);
        for e in 0..m_e {
            if e < self.edge_idx {
                edge_feats.set(e, 0, self.pending[e]);
                edge_feats.set(e, 1, 1.0);
            }
            if e == self.edge_idx {
                edge_feats.set(e, 2, 1.0);
            }
        }
        let mut globals = Matrix::zeros(1, 1);
        globals.set(0, 0, self.edge_idx as f64 / m_e as f64);
        DdrObs {
            structure: Arc::clone(&ctx.structure),
            node_feats: node_features(&self.history, n, self.config.memory),
            edge_feats,
            globals,
            flat: flat_features(&self.history, n, self.config.memory),
            target_edge: Some(self.edge_idx),
        }
    }
}

impl Env for IterativeDdrEnv {
    type Obs = DdrObs;

    fn reset(&mut self, rng: &mut StdRng) -> DdrObs {
        self.active = rng.gen_range(0..self.contexts.len());
        let ctx = &self.contexts[self.active];
        self.seq_idx = rng.gen_range(0..ctx.sequences.len());
        self.history.clear();
        for i in 0..self.config.memory {
            self.history.push(ctx.sequences[self.seq_idx][i].clone());
        }
        self.t = self.config.memory;
        self.edge_idx = 0;
        self.pending = vec![0.0; ctx.graph.num_edges()];
        self.observation()
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step<DdrObs> {
        assert!(
            action.len() >= 2,
            "iterative actions are (weight, gamma) pairs"
        );
        let ctx = &self.contexts[self.active];
        let m_e = ctx.graph.num_edges();
        self.pending[self.edge_idx] = action[0].tanh();
        self.edge_idx += 1;

        if self.edge_idx < m_e {
            return Step {
                obs: self.observation(),
                reward: 0.0,
                done: false,
            };
        }

        // All edges set: translate and route the new demand matrix.
        let gamma = Self::action_to_gamma(action[1]);
        let (lo, hi) = self.config.weight_range;
        let weights: Vec<f64> = self
            .pending
            .iter()
            .map(|&a| lo + (a + 1.0) / 2.0 * (hi - lo))
            .collect();
        let softmin_config = SoftminConfig {
            gamma,
            prune_mode: self.config.softmin.prune_mode,
        };
        let routing = softmin_routing(&ctx.graph, &weights, &softmin_config)
            .expect("weight_range maps actions to positive finite weights");
        let seq = &ctx.sequences[self.seq_idx];
        let dm = &seq[self.t];
        let reward = -ctx.ratio(&routing, dm);

        self.history.push(dm.clone());
        self.t += 1;
        self.edge_idx = 0;
        self.pending.iter_mut().for_each(|w| *w = 0.0);
        let done = self.t >= seq.len();
        Step {
            obs: self.observation(),
            reward,
            done,
        }
    }

    fn action_dim(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::standard_sequences;
    use gddr_net::topology::zoo;
    use gddr_rng::SeedableRng;

    fn env() -> IterativeDdrEnv {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 1, 6, 3, &mut rng);
        IterativeDdrEnv::new(
            GraphContext::new(g, seqs),
            DdrEnvConfig {
                memory: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sub_steps_tag_edges_in_order() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(1);
        let obs0 = e.reset(&mut rng);
        assert_eq!(obs0.target_edge, Some(0));
        assert_eq!(obs0.edge_feats.get(0, 2), 1.0);
        let s = e.step(&[0.5, 0.0], &mut rng);
        assert_eq!(s.obs.target_edge, Some(1));
        // Edge 0 now reports its value and set flag.
        assert!((s.obs.edge_feats.get(0, 0) - 0.5f64.tanh()).abs() < 1e-12);
        assert_eq!(s.obs.edge_feats.get(0, 1), 1.0);
        assert_eq!(s.obs.edge_feats.get(1, 2), 1.0);
        assert_eq!(s.reward, 0.0);
    }

    #[test]
    fn reward_arrives_once_per_demand_matrix() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(2);
        e.reset(&mut rng);
        let m_e = e.context().graph.num_edges();
        let mut rewards = Vec::new();
        let mut done = false;
        let mut steps = 0;
        while !done {
            let s = e.step(&[0.1, 0.2], &mut rng);
            rewards.push(s.reward);
            done = s.done;
            steps += 1;
            assert!(steps <= 1000);
        }
        // Sequence length 6, memory 2 → 4 DMs; each takes m_e sub-steps.
        assert_eq!(steps, 4 * m_e);
        let nonzero: Vec<_> = rewards.iter().filter(|&&r| r != 0.0).collect();
        assert_eq!(nonzero.len(), 4);
        assert!(nonzero.iter().all(|&&r| r <= -1.0 + 1e-6));
        // Rewards land exactly on the last sub-step of each DM.
        for (i, r) in rewards.iter().enumerate() {
            if (i + 1) % m_e == 0 {
                assert!(*r < 0.0);
            } else {
                assert_eq!(*r, 0.0);
            }
        }
    }

    #[test]
    fn gamma_mapping_is_bounded() {
        for a in [-10.0, 0.0, 10.0] {
            let g = IterativeDdrEnv::action_to_gamma(a);
            assert!((0.5..=6.0).contains(&g));
        }
    }

    #[test]
    fn action_dim_is_two() {
        assert_eq!(env().action_dim(), 2);
    }
}
