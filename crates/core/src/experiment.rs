//! Experiment harnesses regenerating the paper's evaluation figures.
//!
//! - [`fixed_graph`] — Fig. 6 (fixed-graph bars) and Fig. 7 (learning
//!   curves come from the returned [`TrainingLog`]s),
//! - [`generalisation`] — Fig. 8 (unseen and modified topologies).
//!
//! Training budgets default to a laptop-scale fraction of the paper's
//! 500k steps; the comparisons are relative (every agent gets the same
//! budget), which preserves the figures' qualitative shape (see
//! DESIGN.md, "Substitutions").

use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_ser::{FromJson, Json, JsonError, ToJson};

use gddr_net::topology::{mutate, zoo};
use gddr_net::Graph;
use gddr_rl::{Ppo, PpoConfig, TrainingLog};
use gddr_traffic::DemandMatrix;

use crate::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext, MultiGraphDdrEnv};
use crate::env_iterative::IterativeDdrEnv;
use crate::eval::{eval_iterative, eval_oneshot, shortest_path_baseline, EvalResult};
use crate::policies::{GnnIterativePolicy, GnnPolicy, GnnPolicyConfig, MlpPolicy};

/// Workload parameters shared by all experiments (paper §VIII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Demand matrices per sequence (paper: 60).
    pub seq_length: usize,
    /// Cycle length `q` (paper: 10).
    pub cycle: usize,
    /// Training sequences (paper: 7).
    pub train_sequences: usize,
    /// Held-out test sequences (paper: 3).
    pub test_sequences: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seq_length: 60,
            cycle: 10,
            train_sequences: 7,
            test_sequences: 3,
        }
    }
}

/// Configuration of the fixed-graph experiment (Figs. 6 and 7).
#[derive(Debug, Clone)]
pub struct FixedGraphConfig {
    /// Topology name (paper: Abilene).
    pub graph_name: String,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Environment settings (memory `m` = 5 in the paper).
    pub env: DdrEnvConfig,
    /// PPO settings for both agents.
    pub ppo: PpoConfig,
    /// GNN architecture.
    pub gnn: GnnPolicyConfig,
    /// MLP hidden layer widths.
    pub mlp_hidden: Vec<usize>,
    /// Initial exploration log-std.
    pub init_log_std: f64,
    /// Training steps per agent (paper: 500k; scaled down by default).
    pub train_steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for FixedGraphConfig {
    fn default() -> Self {
        FixedGraphConfig {
            graph_name: "Abilene".into(),
            workload: WorkloadConfig::default(),
            env: DdrEnvConfig::default(),
            // One-shot routing is a contextual decision per timestep
            // (demands evolve independently of actions), so a modest
            // discount trains faster at small budgets.
            ppo: PpoConfig {
                gamma: 0.4,
                n_steps: 128,
                minibatch_size: 32,
                epochs: 4,
                learning_rate: 1e-3,
                ..Default::default()
            },
            gnn: GnnPolicyConfig::default(),
            mlp_hidden: vec![64, 64],
            init_log_std: -0.7,
            train_steps: 30_000,
            seed: 0,
        }
    }
}

/// A trained agent's evaluation plus its learning curve.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Held-out mean ratio and spread (Fig. 6 bar).
    pub eval: EvalResult,
    /// Per-episode rewards during training (Fig. 7 curve).
    pub log: TrainingLog,
}

impl ToJson for PolicyOutcome {
    fn to_json(&self) -> Json {
        Json::obj([("eval", self.eval.to_json()), ("log", self.log.to_json())])
    }
}

impl FromJson for PolicyOutcome {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(PolicyOutcome {
            eval: FromJson::from_json(json.field("eval")?)?,
            log: FromJson::from_json(json.field("log")?)?,
        })
    }
}

/// Result of the fixed-graph experiment.
#[derive(Debug, Clone)]
pub struct FixedGraphResult {
    /// The MLP baseline agent (Valadarsky et al.).
    pub mlp: PolicyOutcome,
    /// The GNN agent.
    pub gnn: PolicyOutcome,
    /// Shortest-path routing ratio (the dotted line).
    pub shortest_path: EvalResult,
    /// Predict-then-route baseline (§II-A): LP-optimal routing for the
    /// history-averaged prediction, applied to the real demands.
    pub prediction: EvalResult,
}

impl ToJson for FixedGraphResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mlp", self.mlp.to_json()),
            ("gnn", self.gnn.to_json()),
            ("shortest_path", self.shortest_path.to_json()),
            ("prediction", self.prediction.to_json()),
        ])
    }
}

impl FromJson for FixedGraphResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FixedGraphResult {
            mlp: FromJson::from_json(json.field("mlp")?)?,
            gnn: FromJson::from_json(json.field("gnn")?)?,
            shortest_path: FromJson::from_json(json.field("shortest_path")?)?,
            prediction: FromJson::from_json(json.field("prediction")?)?,
        })
    }
}

/// Runs the fixed-graph experiment: trains the MLP baseline and the
/// GNN policy with identical budgets on the same workload, then
/// evaluates both on held-out sequences.
///
/// # Panics
///
/// Panics if the topology name is unknown.
pub fn fixed_graph(config: &FixedGraphConfig) -> FixedGraphResult {
    let graph = zoo::by_name(&config.graph_name)
        .unwrap_or_else(|| panic!("unknown topology {:?}", config.graph_name));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let w = &config.workload;
    let train = standard_sequences(&graph, w.train_sequences, w.seq_length, w.cycle, &mut rng);
    let test = standard_sequences(&graph, w.test_sequences, w.seq_length, w.cycle, &mut rng);

    // The two agents are independent; train them on parallel threads
    // (each with its own environment, oracle cache and RNG stream).
    let (mlp_outcome, gnn_outcome) = std::thread::scope(|scope| {
        let mlp_handle = scope.spawn(|| {
            let mut mlp_rng = StdRng::seed_from_u64(config.seed ^ 0x11);
            let mut mlp = MlpPolicy::new(
                config.env.memory,
                graph.num_nodes(),
                graph.num_edges(),
                &config.mlp_hidden,
                config.init_log_std,
                &mut mlp_rng,
            );
            let mut env = DdrEnv::new(GraphContext::new(graph.clone(), train.clone()), config.env);
            let mut log = TrainingLog::default();
            let mut ppo = Ppo::new(config.ppo);
            ppo.train(
                &mut env,
                &mut mlp,
                config.train_steps,
                &mut mlp_rng,
                &mut log,
            );
            let ctx = GraphContext::new(graph.clone(), train.clone());
            let eval = eval_oneshot(&ctx, &config.env, &mlp, &test).expect("MLP evaluation");
            PolicyOutcome { eval, log }
        });
        let gnn_handle = scope.spawn(|| {
            let mut gnn_rng = StdRng::seed_from_u64(config.seed ^ 0x22);
            let mut gnn = GnnPolicy::new(&config.gnn, config.init_log_std, &mut gnn_rng);
            let mut env = DdrEnv::new(GraphContext::new(graph.clone(), train.clone()), config.env);
            let mut log = TrainingLog::default();
            let mut ppo = Ppo::new(config.ppo);
            ppo.train(
                &mut env,
                &mut gnn,
                config.train_steps,
                &mut gnn_rng,
                &mut log,
            );
            let ctx = GraphContext::new(graph.clone(), train.clone());
            let eval = eval_oneshot(&ctx, &config.env, &gnn, &test).expect("GNN evaluation");
            PolicyOutcome { eval, log }
        });
        (
            mlp_handle.join().expect("MLP training thread"),
            gnn_handle.join().expect("GNN training thread"),
        )
    });

    let eval_ctx = GraphContext::new(graph.clone(), train.clone());
    let sp = shortest_path_baseline(&eval_ctx, &config.env, &test).expect("baseline evaluation");
    let prediction = crate::eval::prediction_baseline(&eval_ctx, &config.env, &test)
        .expect("prediction baseline");

    FixedGraphResult {
        mlp: mlp_outcome,
        gnn: gnn_outcome,
        shortest_path: sp,
        prediction,
    }
}

/// Configuration of the generalisation experiment (Fig. 8).
#[derive(Debug, Clone)]
pub struct GeneralisationConfig {
    /// Workload shape per graph.
    pub workload: WorkloadConfig,
    /// Environment settings.
    pub env: DdrEnvConfig,
    /// PPO settings for the one-shot GNN.
    pub ppo: PpoConfig,
    /// PPO settings for the iterative GNN (needs a high discount to
    /// propagate the delayed per-DM reward across sub-steps).
    pub ppo_iterative: PpoConfig,
    /// GNN architecture (shared by both policies).
    pub gnn: GnnPolicyConfig,
    /// Initial exploration log-std.
    pub init_log_std: f64,
    /// Training steps per policy.
    pub train_steps: usize,
    /// Training steps for the iterative policy (its steps are
    /// sub-steps, |E| per demand matrix, so it needs more).
    pub train_steps_iterative: usize,
    /// How many modified-Abilene variants to evaluate on.
    pub modified_variants: usize,
    /// Random edits per variant (paper: one or two).
    pub edits_per_variant: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeneralisationConfig {
    fn default() -> Self {
        GeneralisationConfig {
            workload: WorkloadConfig {
                seq_length: 30,
                cycle: 10,
                train_sequences: 3,
                test_sequences: 2,
            },
            env: DdrEnvConfig::default(),
            ppo: PpoConfig {
                gamma: 0.4,
                n_steps: 128,
                minibatch_size: 32,
                epochs: 4,
                learning_rate: 1e-3,
                ..Default::default()
            },
            ppo_iterative: PpoConfig {
                gamma: 0.99,
                gae_lambda: 0.95,
                n_steps: 256,
                minibatch_size: 64,
                epochs: 4,
                learning_rate: 1e-3,
                ..Default::default()
            },
            gnn: GnnPolicyConfig::default(),
            init_log_std: -0.7,
            train_steps: 20_000,
            train_steps_iterative: 40_000,
            modified_variants: 4,
            edits_per_variant: 2,
            seed: 0,
        }
    }
}

/// Evaluation of one policy on one test family.
#[derive(Debug, Clone)]
pub struct FamilyEval {
    /// Mean ratio across all graphs and demand matrices in the family.
    pub policy: EvalResult,
    /// Shortest-path baseline on the same family.
    pub shortest_path: EvalResult,
}

impl ToJson for FamilyEval {
    fn to_json(&self) -> Json {
        Json::obj([
            ("policy", self.policy.to_json()),
            ("shortest_path", self.shortest_path.to_json()),
        ])
    }
}

impl FromJson for FamilyEval {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FamilyEval {
            policy: FromJson::from_json(json.field("policy")?)?,
            shortest_path: FromJson::from_json(json.field("shortest_path")?)?,
        })
    }
}

/// Result of the generalisation experiment.
#[derive(Debug, Clone)]
pub struct GeneralisationResult {
    /// One-shot GNN on unseen different graphs.
    pub gnn_different: FamilyEval,
    /// One-shot GNN on modified Abilene.
    pub gnn_modified: FamilyEval,
    /// Iterative GNN on unseen different graphs.
    pub iterative_different: FamilyEval,
    /// Iterative GNN on modified Abilene.
    pub iterative_modified: FamilyEval,
    /// Training curves (gnn, iterative).
    pub gnn_log: TrainingLog,
    /// Iterative policy training curve.
    pub iterative_log: TrainingLog,
}

impl ToJson for GeneralisationResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("gnn_different", self.gnn_different.to_json()),
            ("gnn_modified", self.gnn_modified.to_json()),
            ("iterative_different", self.iterative_different.to_json()),
            ("iterative_modified", self.iterative_modified.to_json()),
            ("gnn_log", self.gnn_log.to_json()),
            ("iterative_log", self.iterative_log.to_json()),
        ])
    }
}

impl FromJson for GeneralisationResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(GeneralisationResult {
            gnn_different: FromJson::from_json(json.field("gnn_different")?)?,
            gnn_modified: FromJson::from_json(json.field("gnn_modified")?)?,
            iterative_different: FromJson::from_json(json.field("iterative_different")?)?,
            iterative_modified: FromJson::from_json(json.field("iterative_modified")?)?,
            gnn_log: FromJson::from_json(json.field("gnn_log")?)?,
            iterative_log: FromJson::from_json(json.field("iterative_log")?)?,
        })
    }
}

/// The training graph mixture: zoo topologies between half and double
/// the size of Abilene, excluding Abilene itself and the held-out test
/// graphs.
pub fn training_graphs() -> Vec<Graph> {
    zoo::in_size_range(6, 22)
        .into_iter()
        .filter(|g| !matches!(g.name(), "Abilene" | "Nsfnet" | "Janet"))
        .collect()
}

/// The held-out "different graphs" test family.
pub fn test_graphs() -> Vec<Graph> {
    vec![zoo::nsfnet(), zoo::janet()]
}

fn contexts_for(
    graphs: &[Graph],
    w: &WorkloadConfig,
    count: usize,
    rng: &mut StdRng,
) -> Vec<GraphContext> {
    graphs
        .iter()
        .map(|g| {
            let seqs = standard_sequences(g, count, w.seq_length, w.cycle, rng);
            GraphContext::new(g.clone(), seqs)
        })
        .collect()
}

fn eval_family<P, F>(
    graphs: &[Graph],
    w: &WorkloadConfig,
    env: &DdrEnvConfig,
    policy: &P,
    eval_fn: F,
    rng: &mut StdRng,
) -> FamilyEval
where
    P: gddr_rl::Policy<Obs = crate::obs::DdrObs>,
    F: Fn(
        &GraphContext,
        &DdrEnvConfig,
        &P,
        &[Vec<DemandMatrix>],
    ) -> Result<EvalResult, crate::error::CoreError>,
{
    let mut policy_ratios = Vec::new();
    let mut sp_ratios = Vec::new();
    for g in graphs {
        let test = standard_sequences(g, w.test_sequences, w.seq_length, w.cycle, rng);
        let ctx = GraphContext::new(g.clone(), test.clone());
        let res = eval_fn(&ctx, env, policy, &test).expect("family evaluation");
        policy_ratios.extend(res.ratios);
        let sp = shortest_path_baseline(&ctx, env, &test).expect("family baseline");
        sp_ratios.extend(sp.ratios);
    }
    FamilyEval {
        policy: EvalResult::from_ratios(policy_ratios).expect("non-empty family"),
        shortest_path: EvalResult::from_ratios(sp_ratios).expect("non-empty family"),
    }
}

/// Builds the modified-Abilene test family: `variants` copies of
/// Abilene, each with `edits` random node/edge additions or deletions
/// (paper Fig. 8's second group).
pub fn modified_abilene(variants: usize, edits: usize, rng: &mut StdRng) -> Vec<Graph> {
    let base = zoo::abilene();
    (0..variants)
        .map(|_| mutate::random_edits(&base, edits, rng))
        .collect()
}

/// Runs the generalisation experiment: trains the one-shot GNN and the
/// iterative GNN on a mixture of topologies, then evaluates both on
/// (a) unseen different graphs and (b) Abilene with small random
/// modifications.
pub fn generalisation(config: &GeneralisationConfig) -> GeneralisationResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let w = &config.workload;
    let train_graphs = training_graphs();

    // Both policies train independently; run them on parallel threads.
    let gnn_contexts = contexts_for(&train_graphs, w, w.train_sequences, &mut rng);
    let it_contexts = contexts_for(&train_graphs, w, w.train_sequences, &mut rng);
    let ((gnn, gnn_log), (iterative, it_log)) = std::thread::scope(|scope| {
        let gnn_handle = scope.spawn(|| {
            let mut gnn_rng = StdRng::seed_from_u64(config.seed ^ 0x33);
            let mut gnn = GnnPolicy::new(&config.gnn, config.init_log_std, &mut gnn_rng);
            let mut env = MultiGraphDdrEnv::new(gnn_contexts, config.env);
            let mut log = TrainingLog::default();
            let mut ppo = Ppo::new(config.ppo);
            ppo.train(
                &mut env,
                &mut gnn,
                config.train_steps,
                &mut gnn_rng,
                &mut log,
            );
            (gnn, log)
        });
        let it_handle = scope.spawn(|| {
            let mut it_rng = StdRng::seed_from_u64(config.seed ^ 0x44);
            let mut iterative =
                GnnIterativePolicy::new(&config.gnn, config.init_log_std, &mut it_rng);
            let mut env = IterativeDdrEnv::new_multi(it_contexts, config.env);
            let mut log = TrainingLog::default();
            let mut ppo = Ppo::new(config.ppo_iterative);
            ppo.train(
                &mut env,
                &mut iterative,
                config.train_steps_iterative,
                &mut it_rng,
                &mut log,
            );
            (iterative, log)
        });
        (
            gnn_handle.join().expect("GNN training thread"),
            it_handle.join().expect("iterative training thread"),
        )
    });

    // --- Test families ---
    let different = test_graphs();
    let modified = modified_abilene(config.modified_variants, config.edits_per_variant, &mut rng);

    let gnn_different = eval_family(&different, w, &config.env, &gnn, eval_oneshot, &mut rng);
    let gnn_modified = eval_family(&modified, w, &config.env, &gnn, eval_oneshot, &mut rng);
    let iterative_different = eval_family(
        &different,
        w,
        &config.env,
        &iterative,
        eval_iterative,
        &mut rng,
    );
    let iterative_modified = eval_family(
        &modified,
        w,
        &config.env,
        &iterative,
        eval_iterative,
        &mut rng,
    );

    GeneralisationResult {
        gnn_different,
        gnn_modified,
        iterative_different,
        iterative_modified,
        gnn_log,
        iterative_log: it_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal budget that exercises the full pipeline quickly.
    fn tiny_fixed_config() -> FixedGraphConfig {
        FixedGraphConfig {
            graph_name: "Cesnet".into(),
            workload: WorkloadConfig {
                seq_length: 8,
                cycle: 4,
                train_sequences: 2,
                test_sequences: 1,
            },
            env: DdrEnvConfig {
                memory: 2,
                ..Default::default()
            },
            ppo: PpoConfig {
                n_steps: 12,
                minibatch_size: 6,
                epochs: 1,
                gamma: 0.4,
                ..Default::default()
            },
            gnn: GnnPolicyConfig {
                memory: 2,
                latent: 4,
                hidden: 8,
                message_steps: 1,
                layer_norm: false,
            },
            mlp_hidden: vec![16],
            init_log_std: -0.7,
            train_steps: 24,
            seed: 1,
        }
    }

    #[test]
    fn fixed_graph_pipeline_runs() {
        let result = fixed_graph(&tiny_fixed_config());
        assert!(result.mlp.eval.mean_ratio >= 1.0 - 1e-6);
        assert!(result.gnn.eval.mean_ratio >= 1.0 - 1e-6);
        assert!(result.shortest_path.mean_ratio >= 1.0 - 1e-6);
        assert!(result.mlp.log.total_steps >= 24);
        assert!(result.gnn.log.total_steps >= 24);
        assert!(!result.gnn.log.episodes.is_empty());
    }

    #[test]
    fn training_and_test_graphs_are_disjoint() {
        let train: Vec<String> = training_graphs()
            .iter()
            .map(|g| g.name().to_string())
            .collect();
        for g in test_graphs() {
            assert!(!train.contains(&g.name().to_string()));
        }
        assert!(!train.contains(&"Abilene".to_string()));
        assert!(train.len() >= 6, "mixture too small: {train:?}");
    }

    #[test]
    fn modified_abilene_variants_are_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let variants = modified_abilene(3, 2, &mut rng);
        assert_eq!(variants.len(), 3);
        for v in &variants {
            assert!(gddr_net::algo::is_strongly_connected(v));
        }
    }
}
