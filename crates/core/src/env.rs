//! The data-driven-routing environment (paper §V, Fig. 1).
//!
//! Each episode walks a demand sequence. At every timestep the agent
//! observes the previous `m` demand matrices, emits one weight per
//! edge, softmin routing translates the weights into a routing
//! strategy, and the reward compares the resulting max-link-utilisation
//! against the LP optimum for the *new* (unseen) demand matrix:
//!
//! `reward = − U_max_agent / U_max_optimal`  (Eq. 2)
//!
//! [`MultiGraphDdrEnv`] samples a different graph per episode — the
//! setup of the generalisation experiment (Fig. 8); only graph-size-
//! independent policies (the GNN ones) can train on it.

use std::sync::Arc;

use gddr_rng::rngs::StdRng;
use gddr_rng::Rng;

use gddr_gnn::GraphStructure;
use gddr_lp::CachedOracle;
use gddr_net::Graph;
use gddr_nn::Matrix;
use gddr_rl::{Env, Step};
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_traffic::DemandMatrix;

use crate::obs::{flat_features, node_features, DdrObs, DemandHistory};

/// Environment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrEnvConfig {
    /// Demand-history length `m` (paper: 5).
    pub memory: usize,
    /// Softmin translation settings (γ and DAG conversion).
    pub softmin: SoftminConfig,
    /// Raw actions are squashed with `tanh` and mapped into this
    /// weight interval.
    pub weight_range: (f64, f64),
}

impl Default for DdrEnvConfig {
    fn default() -> Self {
        DdrEnvConfig {
            memory: 5,
            softmin: SoftminConfig::default(),
            weight_range: (0.5, 4.5),
        }
    }
}

impl DdrEnvConfig {
    /// Maps one raw policy output to an edge weight.
    pub fn action_to_weight(&self, a: f64) -> f64 {
        let (lo, hi) = self.weight_range;
        lo + (a.tanh() + 1.0) / 2.0 * (hi - lo)
    }

    /// Maps a full raw action vector to edge weights.
    ///
    /// # Panics
    ///
    /// Panics if the action is shorter than `num_edges`.
    pub fn action_to_weights(&self, action: &[f64], num_edges: usize) -> Vec<f64> {
        assert!(
            action.len() >= num_edges,
            "action provides {} weights, graph needs {}",
            action.len(),
            num_edges
        );
        action[..num_edges]
            .iter()
            .map(|&a| self.action_to_weight(a))
            .collect()
    }
}

/// A graph plus everything the environment needs to route on it.
#[derive(Debug)]
pub struct GraphContext {
    /// The topology.
    pub graph: Graph,
    /// GNN connectivity view (shared with observations).
    pub structure: Arc<GraphStructure>,
    /// Optimal-routing oracle with per-DM cache.
    pub oracle: CachedOracle,
    /// Demand sequences; an episode walks one of them.
    pub sequences: Vec<Vec<DemandMatrix>>,
}

impl GraphContext {
    /// Bundles a graph with its demand sequences.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty, any sequence is empty, or a
    /// matrix size disagrees with the graph.
    pub fn new(graph: Graph, sequences: Vec<Vec<DemandMatrix>>) -> Self {
        assert!(!sequences.is_empty(), "need at least one demand sequence");
        for seq in &sequences {
            assert!(!seq.is_empty(), "sequences must be non-empty");
            for dm in seq {
                assert_eq!(
                    dm.num_nodes(),
                    graph.num_nodes(),
                    "demand matrix size must match the graph"
                );
            }
        }
        let structure = Arc::new(GraphStructure::from_graph(&graph));
        let oracle = CachedOracle::new(graph.clone());
        GraphContext {
            graph,
            structure,
            oracle,
            sequences,
        }
    }

    /// Ratio `U_agent / U_opt` for a concrete routing and demand matrix
    /// — the quantity behind the paper's bar charts (lower is better,
    /// 1.0 is optimal).
    ///
    /// # Panics
    ///
    /// Panics if the routing loses traffic (a softmin-translation
    /// invariant violation) or the LP fails.
    pub fn ratio(&self, routing: &gddr_routing::Routing, dm: &DemandMatrix) -> f64 {
        let _span = gddr_telemetry::span("env.reward");
        let report = max_link_utilisation(&self.graph, routing, dm)
            .expect("softmin routing delivers all traffic");
        let u_opt = self
            .oracle
            .u_opt(dm)
            .expect("strongly connected graphs have an optimal routing");
        let ratio = if u_opt <= 1e-12 {
            1.0
        } else {
            report.u_max / u_opt
        };
        gddr_telemetry::histogram_record("env.reward_ratio", ratio);
        ratio
    }
}

/// Single-graph data-driven-routing environment (Figs. 6 and 7 setup).
#[derive(Debug)]
pub struct DdrEnv {
    ctx: GraphContext,
    config: DdrEnvConfig,
    seq_idx: usize,
    t: usize,
    history: DemandHistory,
}

impl DdrEnv {
    /// Creates the environment.
    ///
    /// # Panics
    ///
    /// Panics if any sequence is not longer than the memory (there
    /// would be no step to take).
    pub fn new(ctx: GraphContext, config: DdrEnvConfig) -> Self {
        for seq in &ctx.sequences {
            assert!(
                seq.len() > config.memory,
                "sequence length {} must exceed memory {}",
                seq.len(),
                config.memory
            );
        }
        let history = DemandHistory::new(config.memory);
        DdrEnv {
            ctx,
            config,
            seq_idx: 0,
            t: 0,
            history,
        }
    }

    /// The underlying graph context.
    pub fn context(&self) -> &GraphContext {
        &self.ctx
    }

    /// The environment configuration.
    pub fn config(&self) -> &DdrEnvConfig {
        &self.config
    }

    fn observation(&self) -> DdrObs {
        let n = self.ctx.graph.num_nodes();
        let m_e = self.ctx.graph.num_edges();
        DdrObs {
            structure: Arc::clone(&self.ctx.structure),
            node_feats: node_features(&self.history, n, self.config.memory),
            edge_feats: Matrix::zeros(m_e, 3),
            globals: Matrix::zeros(1, 1),
            flat: flat_features(&self.history, n, self.config.memory),
            target_edge: None,
        }
    }
}

impl Env for DdrEnv {
    type Obs = DdrObs;

    fn reset(&mut self, rng: &mut StdRng) -> DdrObs {
        self.seq_idx = rng.gen_range(0..self.ctx.sequences.len());
        self.history.clear();
        // Pre-fill the history with the first `m` matrices: the agent
        // routes from timestep m onwards (Fig. 1).
        for i in 0..self.config.memory {
            self.history
                .push(self.ctx.sequences[self.seq_idx][i].clone());
        }
        self.t = self.config.memory;
        self.observation()
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step<DdrObs> {
        let _span = gddr_telemetry::span("env.step");
        let weights = self
            .config
            .action_to_weights(action, self.ctx.graph.num_edges());
        let routing = softmin_routing(&self.ctx.graph, &weights, &self.config.softmin);
        let seq = &self.ctx.sequences[self.seq_idx];
        let dm = &seq[self.t];
        let reward = -self.ctx.ratio(&routing, dm);
        self.history.push(dm.clone());
        self.t += 1;
        let done = self.t >= seq.len();
        Step {
            obs: self.observation(),
            reward,
            done,
        }
    }

    fn action_dim(&self) -> usize {
        self.ctx.graph.num_edges()
    }
}

/// Multi-graph environment: each episode runs on a randomly drawn
/// graph context (the Fig. 8 training setup).
#[derive(Debug)]
pub struct MultiGraphDdrEnv {
    contexts: Vec<GraphContext>,
    config: DdrEnvConfig,
    active: usize,
    seq_idx: usize,
    t: usize,
    history: DemandHistory,
}

impl MultiGraphDdrEnv {
    /// Creates the environment over the given graph mixture.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or any sequence is not longer
    /// than the memory.
    pub fn new(contexts: Vec<GraphContext>, config: DdrEnvConfig) -> Self {
        assert!(!contexts.is_empty(), "need at least one graph");
        for ctx in &contexts {
            for seq in &ctx.sequences {
                assert!(
                    seq.len() > config.memory,
                    "sequence length must exceed memory"
                );
            }
        }
        let history = DemandHistory::new(config.memory);
        MultiGraphDdrEnv {
            contexts,
            config,
            active: 0,
            seq_idx: 0,
            t: 0,
            history,
        }
    }

    /// The graph contexts in the mixture.
    pub fn contexts(&self) -> &[GraphContext] {
        &self.contexts
    }

    /// The currently active context (valid after a reset).
    pub fn active_context(&self) -> &GraphContext {
        &self.contexts[self.active]
    }

    fn observation(&self) -> DdrObs {
        let ctx = &self.contexts[self.active];
        let n = ctx.graph.num_nodes();
        let m_e = ctx.graph.num_edges();
        DdrObs {
            structure: Arc::clone(&ctx.structure),
            node_feats: node_features(&self.history, n, self.config.memory),
            edge_feats: Matrix::zeros(m_e, 3),
            globals: Matrix::zeros(1, 1),
            flat: flat_features(&self.history, n, self.config.memory),
            target_edge: None,
        }
    }
}

impl Env for MultiGraphDdrEnv {
    type Obs = DdrObs;

    fn reset(&mut self, rng: &mut StdRng) -> DdrObs {
        self.active = rng.gen_range(0..self.contexts.len());
        let ctx = &self.contexts[self.active];
        self.seq_idx = rng.gen_range(0..ctx.sequences.len());
        self.history.clear();
        for i in 0..self.config.memory {
            self.history.push(ctx.sequences[self.seq_idx][i].clone());
        }
        self.t = self.config.memory;
        self.observation()
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step<DdrObs> {
        let _span = gddr_telemetry::span("env.step");
        let ctx = &self.contexts[self.active];
        let weights = self.config.action_to_weights(action, ctx.graph.num_edges());
        let routing = softmin_routing(&ctx.graph, &weights, &self.config.softmin);
        let seq = &ctx.sequences[self.seq_idx];
        let dm = &seq[self.t];
        let reward = -ctx.ratio(&routing, dm);
        self.history.push(dm.clone());
        self.t += 1;
        let done = self.t >= seq.len();
        Step {
            obs: self.observation(),
            reward,
            done,
        }
    }

    fn action_dim(&self) -> usize {
        self.contexts
            .iter()
            .map(|c| c.graph.num_edges())
            .max()
            .expect("non-empty mixture")
    }
}

/// Builds the paper's standard workload for a graph: `count` cyclical
/// bimodal sequences of `length` DMs with cycle `cycle` (§VIII-B/D:
/// 60 DMs, cycle 10).
pub fn standard_sequences(
    graph: &Graph,
    count: usize,
    length: usize,
    cycle: usize,
    rng: &mut StdRng,
) -> Vec<Vec<DemandMatrix>> {
    let params = gddr_traffic::gen::BimodalParams::default();
    (0..count)
        .map(|_| gddr_traffic::sequence::cyclical(graph.num_nodes(), cycle, length, &params, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_rng::SeedableRng;

    fn small_env() -> DdrEnv {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 2, 8, 4, &mut rng);
        let config = DdrEnvConfig {
            memory: 3,
            ..Default::default()
        };
        DdrEnv::new(GraphContext::new(g, seqs), config)
    }

    #[test]
    fn episode_walks_the_sequence() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.node_feats.shape(), (6, 6));
        assert_eq!(obs.flat.len(), 3 * 36);
        let action = vec![0.0; env.action_dim()];
        let mut steps = 0;
        let mut done = false;
        while !done {
            let s = env.step(&action, &mut rng);
            assert!(s.reward < 0.0, "ratio reward is negative");
            assert!(s.reward >= -50.0, "reward out of plausible range");
            done = s.done;
            steps += 1;
            assert!(steps <= 8, "episode too long");
        }
        // length 8, memory 3 → 5 routed steps.
        assert_eq!(steps, 5);
    }

    #[test]
    fn reward_is_at_best_minus_one() {
        // U_agent >= U_opt always, so reward <= -1.
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(2);
        env.reset(&mut rng);
        let action = vec![0.3; env.action_dim()];
        let s = env.step(&action, &mut rng);
        assert!(
            s.reward <= -1.0 + 1e-6,
            "agent cannot beat the LP optimum: {}",
            s.reward
        );
    }

    #[test]
    fn action_weight_mapping_respects_range() {
        let cfg = DdrEnvConfig::default();
        let (lo, hi) = cfg.weight_range;
        for a in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let w = cfg.action_to_weight(a);
            assert!(w >= lo && w <= hi, "weight {w} outside [{lo}, {hi}]");
        }
        assert!((cfg.action_to_weight(0.0) - (lo + hi) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_cache_fills_once_per_distinct_dm() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(3);
        let action = vec![0.0; env.action_dim()];
        for _ in 0..2 {
            env.reset(&mut rng);
            let mut done = false;
            while !done {
                done = env.step(&action, &mut rng).done;
            }
        }
        // 2 sequences × cycle 4 → at most 8 distinct DMs.
        assert!(env.context().oracle.cache_len() <= 8);
    }

    #[test]
    fn multi_graph_env_switches_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let graphs = [zoo::cesnet(), zoo::janet()];
        let contexts: Vec<GraphContext> = graphs
            .iter()
            .map(|g| {
                let seqs = standard_sequences(g, 1, 6, 3, &mut rng);
                GraphContext::new(g.clone(), seqs)
            })
            .collect();
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let mut env = MultiGraphDdrEnv::new(contexts, config);
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..10 {
            let obs = env.reset(&mut rng);
            sizes.insert(obs.structure.num_nodes);
            // One full step works on whichever graph is active.
            let action = vec![0.1; obs.structure.num_edges];
            let s = env.step(&action, &mut rng);
            assert!(s.reward < 0.0);
        }
        assert_eq!(sizes.len(), 2, "both graphs should be sampled");
        assert_eq!(env.action_dim(), 2 * 11); // janet has 11 links
    }

    #[test]
    #[should_panic(expected = "must exceed memory")]
    fn rejects_short_sequences() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(5);
        let seqs = standard_sequences(&g, 1, 3, 3, &mut rng);
        DdrEnv::new(
            GraphContext::new(g, seqs),
            DdrEnvConfig {
                memory: 5,
                ..Default::default()
            },
        );
    }
}
