//! The data-driven-routing environment (paper §V, Fig. 1).
//!
//! Each episode walks a demand sequence. At every timestep the agent
//! observes the previous `m` demand matrices, emits one weight per
//! edge, softmin routing translates the weights into a routing
//! strategy, and the reward compares the resulting max-link-utilisation
//! against the LP optimum for the *new* (unseen) demand matrix:
//!
//! `reward = − U_max_agent / U_max_optimal`  (Eq. 2)
//!
//! [`MultiGraphDdrEnv`] samples a different graph per episode — the
//! setup of the generalisation experiment (Fig. 8); only graph-size-
//! independent policies (the GNN ones) can train on it.

use std::sync::Arc;

use gddr_rng::rngs::StdRng;
use gddr_rng::{Rng, SeedableRng};

use gddr_gnn::GraphStructure;
use gddr_lp::CachedOracle;
use gddr_net::topology::mutate;
use gddr_net::Graph;
use gddr_nn::Matrix;
use gddr_rl::{Env, ResumableEnv, Step};
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_ser::{FromJson, Json, JsonError, ToJson};
use gddr_traffic::DemandMatrix;

use crate::error::CoreError;
use crate::obs::{flat_features, node_features, DdrObs, DemandHistory};

/// Environment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrEnvConfig {
    /// Demand-history length `m` (paper: 5).
    pub memory: usize,
    /// Softmin translation settings (γ and DAG conversion).
    pub softmin: SoftminConfig,
    /// Raw actions are squashed with `tanh` and mapped into this
    /// weight interval.
    pub weight_range: (f64, f64),
}

impl Default for DdrEnvConfig {
    fn default() -> Self {
        DdrEnvConfig {
            memory: 5,
            softmin: SoftminConfig::default(),
            weight_range: (0.5, 4.5),
        }
    }
}

impl DdrEnvConfig {
    /// Maps one raw policy output to an edge weight.
    pub fn action_to_weight(&self, a: f64) -> f64 {
        let (lo, hi) = self.weight_range;
        lo + (a.tanh() + 1.0) / 2.0 * (hi - lo)
    }

    /// Maps a full raw action vector to edge weights.
    ///
    /// # Panics
    ///
    /// Panics if the action is shorter than `num_edges`. Fallible
    /// callers (serving workers) use
    /// [`DdrEnvConfig::try_action_to_weights`].
    pub fn action_to_weights(&self, action: &[f64], num_edges: usize) -> Vec<f64> {
        self.try_action_to_weights(action, num_edges)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DdrEnvConfig::action_to_weights`]: a short or
    /// non-finite action surfaces as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`CoreError::ActionTooShort`] if the action is shorter than
    /// `num_edges`; [`CoreError::Routing`] if any used entry is NaN
    /// (tanh squashing maps infinities fine, but NaN would poison the
    /// weight).
    pub fn try_action_to_weights(
        &self,
        action: &[f64],
        num_edges: usize,
    ) -> Result<Vec<f64>, CoreError> {
        if action.len() < num_edges {
            return Err(CoreError::ActionTooShort {
                got: action.len(),
                need: num_edges,
            });
        }
        if let Some(idx) = action[..num_edges].iter().position(|a| a.is_nan()) {
            return Err(CoreError::Routing(format!("NaN action entry at {idx}")));
        }
        Ok(action[..num_edges]
            .iter()
            .map(|&a| self.action_to_weight(a))
            .collect())
    }
}

/// A graph plus everything the environment needs to route on it.
#[derive(Debug)]
pub struct GraphContext {
    /// The topology.
    pub graph: Graph,
    /// GNN connectivity view (shared with observations).
    pub structure: Arc<GraphStructure>,
    /// Optimal-routing oracle with per-DM cache.
    pub oracle: CachedOracle,
    /// Demand sequences; an episode walks one of them.
    pub sequences: Vec<Vec<DemandMatrix>>,
}

impl GraphContext {
    /// Bundles a graph with its demand sequences.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty, any sequence is empty, or a
    /// matrix size disagrees with the graph.
    pub fn new(graph: Graph, sequences: Vec<Vec<DemandMatrix>>) -> Self {
        assert!(!sequences.is_empty(), "need at least one demand sequence");
        for seq in &sequences {
            assert!(!seq.is_empty(), "sequences must be non-empty");
            for dm in seq {
                assert_eq!(
                    dm.num_nodes(),
                    graph.num_nodes(),
                    "demand matrix size must match the graph"
                );
            }
        }
        let structure = Arc::new(GraphStructure::from_graph(&graph));
        let oracle = CachedOracle::new(graph.clone());
        GraphContext {
            graph,
            structure,
            oracle,
            sequences,
        }
    }

    /// Ratio `U_agent / U_opt` for a concrete routing and demand matrix
    /// — the quantity behind the paper's bar charts (lower is better,
    /// 1.0 is optimal). Delegates to [`routing_ratio`]: the oracle side
    /// degrades gracefully on solver trouble instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the routing loses traffic (a softmin-translation
    /// invariant violation) or no routing exists at all.
    pub fn ratio(&self, routing: &gddr_routing::Routing, dm: &DemandMatrix) -> f64 {
        routing_ratio(&self.graph, &self.oracle, routing, dm).ratio
    }

    /// Fallible [`GraphContext::ratio`]: malformed demands and
    /// simulation/oracle failures surface as typed errors.
    ///
    /// # Errors
    ///
    /// As [`try_routing_ratio`].
    pub fn try_ratio(
        &self,
        routing: &gddr_routing::Routing,
        dm: &DemandMatrix,
    ) -> Result<RatioOutcome, CoreError> {
        try_routing_ratio(&self.graph, &self.oracle, routing, dm)
    }
}

/// The reward-side outcome of one routed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioOutcome {
    /// `U_agent / U_opt` (1.0 is optimal, lower bound).
    pub ratio: f64,
    /// `true` when the denominator came from the oracle's degraded
    /// shortest-path fallback rather than the exact LP.
    pub degraded: bool,
}

/// Computes `U_agent / U_opt` through the resilient oracle: LP pivot
/// trouble falls back (Bland retry, then the shortest-path bound) and
/// flags the outcome `degraded` instead of aborting the episode.
///
/// # Panics
///
/// Panics if the routing loses traffic (a softmin-translation invariant
/// violation) or the demands are unroutable on any path — conditions no
/// fallback can paper over.
pub fn routing_ratio(
    graph: &Graph,
    oracle: &CachedOracle,
    routing: &gddr_routing::Routing,
    dm: &DemandMatrix,
) -> RatioOutcome {
    try_routing_ratio(graph, oracle, routing, dm).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`routing_ratio`]: validates the demand matrix (size and
/// finiteness) before touching the simulator, then maps simulation and
/// oracle failures to typed errors — the form serving workers need,
/// where a malformed request must degrade the response, not abort the
/// thread.
///
/// # Errors
///
/// [`CoreError::DemandMismatch`] / [`CoreError::NonFiniteDemand`] on a
/// malformed matrix, [`CoreError::Simulation`] if the routing loses
/// traffic, [`CoreError::Oracle`] if no optimal routing exists.
pub fn try_routing_ratio(
    graph: &Graph,
    oracle: &CachedOracle,
    routing: &gddr_routing::Routing,
    dm: &DemandMatrix,
) -> Result<RatioOutcome, CoreError> {
    let _span = gddr_telemetry::span("env.reward");
    let n = graph.num_nodes();
    if dm.num_nodes() != n {
        return Err(CoreError::DemandMismatch {
            expected: n,
            got: dm.num_nodes(),
        });
    }
    for s in 0..n {
        for t in 0..n {
            if !dm.get(s, t).is_finite() {
                return Err(CoreError::NonFiniteDemand { src: s, dst: t });
            }
        }
    }
    let report = max_link_utilisation(graph, routing, dm)
        .map_err(|e| CoreError::Simulation(format!("{e:?}")))?;
    let opt = oracle
        .u_opt_resilient(dm)
        .map_err(|e| CoreError::Oracle(format!("{e:?}")))?;
    let ratio = if opt.u_opt <= 1e-12 {
        1.0
    } else {
        report.u_max / opt.u_opt
    };
    gddr_telemetry::histogram_record("env.reward_ratio", ratio);
    Ok(RatioOutcome {
        ratio,
        degraded: opt.degraded,
    })
}

/// Per-episode link-failure injection (the robustness counterpart of
/// the paper's Fig. 8 generalisation setup): at every reset, up to
/// `edges_per_episode` random links are removed from the base graph —
/// connectivity-preserving, so every episode stays routable — and the
/// episode runs on the degraded topology. Draws come from the
/// injector's own seeded RNG stream (fork the training RNG), keeping
/// failure patterns reproducible and independent of policy sampling.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    /// Links removed per episode (fewer when removal would disconnect
    /// the graph).
    pub edges_per_episode: usize,
    rng: StdRng,
}

impl FailureInjector {
    /// Creates an injector drawing from `rng` — typically a
    /// [`SeedableRng::fork`] of the training stream.
    pub fn new(edges_per_episode: usize, rng: StdRng) -> Self {
        FailureInjector {
            edges_per_episode,
            rng,
        }
    }

    /// Convenience constructor from a bare seed.
    pub fn from_seed(edges_per_episode: usize, seed: u64) -> Self {
        Self::new(edges_per_episode, StdRng::seed_from_u64(seed))
    }

    /// Removes up to `edges_per_episode` random links from `base`,
    /// keeping it strongly connected. Returns the degraded graph and
    /// the number of links actually removed (0 removals returns a
    /// plain clone). Public so `gddr-serve`'s chaos scenarios can
    /// inject the same failure patterns outside an environment.
    pub fn degrade(&mut self, base: &Graph) -> (Graph, usize) {
        let mut g = base.clone();
        let mut removed = 0;
        for _ in 0..self.edges_per_episode {
            match mutate::remove_random_edge(&g, &mut self.rng) {
                Some(next) => {
                    g = next;
                    removed += 1;
                }
                None => break,
            }
        }
        g.set_name(format!("{}-{removed}f", base.name()));
        (g, removed)
    }
}

/// The episode-local view of a degraded topology: the faulted graph
/// plus the derived structures routing and rewards need.
#[derive(Debug)]
struct FaultedView {
    graph: Graph,
    structure: Arc<GraphStructure>,
    oracle: CachedOracle,
    removed: usize,
}

impl FaultedView {
    fn new(graph: Graph, removed: usize) -> Self {
        let structure = Arc::new(GraphStructure::from_graph(&graph));
        let oracle = CachedOracle::new(graph.clone());
        FaultedView {
            graph,
            structure,
            oracle,
            removed,
        }
    }
}

/// Single-graph data-driven-routing environment (Figs. 6 and 7 setup),
/// optionally with per-episode link-failure injection
/// ([`DdrEnv::with_failures`]).
#[derive(Debug)]
pub struct DdrEnv {
    ctx: GraphContext,
    config: DdrEnvConfig,
    seq_idx: usize,
    t: usize,
    history: DemandHistory,
    injector: Option<FailureInjector>,
    faulted: Option<FaultedView>,
}

impl DdrEnv {
    /// Creates the environment.
    ///
    /// # Panics
    ///
    /// Panics if any sequence is not longer than the memory (there
    /// would be no step to take).
    pub fn new(ctx: GraphContext, config: DdrEnvConfig) -> Self {
        for seq in &ctx.sequences {
            assert!(
                seq.len() > config.memory,
                "sequence length {} must exceed memory {}",
                seq.len(),
                config.memory
            );
        }
        let history = DemandHistory::new(config.memory);
        DdrEnv {
            ctx,
            config,
            seq_idx: 0,
            t: 0,
            history,
            injector: None,
            faulted: None,
        }
    }

    /// Creates the environment with link-failure injection: every
    /// episode runs on a copy of the graph with up to
    /// `injector.edges_per_episode` random links removed
    /// (connectivity-preserving). The action dimension stays that of
    /// the base graph; surplus weight outputs are ignored on degraded
    /// topologies, mirroring [`MultiGraphDdrEnv`].
    ///
    /// # Panics
    ///
    /// As [`DdrEnv::new`].
    pub fn with_failures(
        ctx: GraphContext,
        config: DdrEnvConfig,
        injector: FailureInjector,
    ) -> Self {
        let mut env = Self::new(ctx, config);
        env.injector = Some(injector);
        env
    }

    /// The underlying graph context.
    pub fn context(&self) -> &GraphContext {
        &self.ctx
    }

    /// The environment configuration.
    pub fn config(&self) -> &DdrEnvConfig {
        &self.config
    }

    /// The graph the current episode routes on: the degraded copy when
    /// failure injection is active, the base graph otherwise.
    pub fn active_graph(&self) -> &Graph {
        match &self.faulted {
            Some(f) => &f.graph,
            None => &self.ctx.graph,
        }
    }

    /// Links removed from the base graph for the current episode.
    pub fn removed_links(&self) -> usize {
        self.faulted.as_ref().map_or(0, |f| f.removed)
    }

    fn active_structure(&self) -> &Arc<GraphStructure> {
        match &self.faulted {
            Some(f) => &f.structure,
            None => &self.ctx.structure,
        }
    }

    fn active_oracle(&self) -> &CachedOracle {
        match &self.faulted {
            Some(f) => &f.oracle,
            None => &self.ctx.oracle,
        }
    }

    fn observation(&self) -> DdrObs {
        let n = self.ctx.graph.num_nodes();
        let m_e = self.active_graph().num_edges();
        DdrObs {
            structure: Arc::clone(self.active_structure()),
            node_feats: node_features(&self.history, n, self.config.memory),
            edge_feats: Matrix::zeros(m_e, 3),
            globals: Matrix::zeros(1, 1),
            flat: flat_features(&self.history, n, self.config.memory),
            target_edge: None,
        }
    }
}

impl Env for DdrEnv {
    type Obs = DdrObs;

    fn reset(&mut self, rng: &mut StdRng) -> DdrObs {
        self.seq_idx = rng.gen_range(0..self.ctx.sequences.len());
        self.history.clear();
        // Pre-fill the history with the first `m` matrices: the agent
        // routes from timestep m onwards (Fig. 1).
        for i in 0..self.config.memory {
            self.history
                .push(self.ctx.sequences[self.seq_idx][i].clone());
        }
        self.t = self.config.memory;
        if let Some(injector) = self.injector.as_mut() {
            let (graph, removed) = injector.degrade(&self.ctx.graph);
            gddr_telemetry::fault_injected_event(self.ctx.graph.name(), removed as u64);
            self.faulted = Some(FaultedView::new(graph, removed));
        }
        self.observation()
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step<DdrObs> {
        let _span = gddr_telemetry::span("env.step");
        let graph = match &self.faulted {
            Some(f) => &f.graph,
            None => &self.ctx.graph,
        };
        let weights = self.config.action_to_weights(action, graph.num_edges());
        let routing = softmin_routing(graph, &weights, &self.config.softmin)
            .expect("action_to_weights yields positive finite weights");
        let seq = &self.ctx.sequences[self.seq_idx];
        let dm = &seq[self.t];
        let reward = -routing_ratio(graph, self.active_oracle(), &routing, dm).ratio;
        self.history.push(dm.clone());
        self.t += 1;
        let done = self.t >= seq.len();
        Step {
            obs: self.observation(),
            reward,
            done,
        }
    }

    fn action_dim(&self) -> usize {
        self.ctx.graph.num_edges()
    }
}

fn rng_state_to_json(state: &[u64; 4]) -> Json {
    // Decimal strings: `gddr-ser` routes numbers through `f64`, which
    // would silently truncate state words above 2^53.
    Json::Arr(state.iter().map(|w| Json::Str(w.to_string())).collect())
}

fn rng_state_from_json(json: &Json) -> Result<[u64; 4], JsonError> {
    let words = match json {
        Json::Arr(items) if items.len() == 4 => items,
        _ => return Err(JsonError("rng state must be 4 words".to_string())),
    };
    let mut state = [0u64; 4];
    for (i, w) in words.iter().enumerate() {
        let text = match w {
            Json::Str(s) => s,
            _ => return Err(JsonError("rng state word must be a string".to_string())),
        };
        state[i] = text
            .parse::<u64>()
            .map_err(|e| JsonError(format!("bad rng state word {text:?}: {e}")))?;
    }
    Ok(state)
}

impl ResumableEnv for DdrEnv {
    fn state_json(&self) -> Json {
        let history: Vec<Json> = self.history.iter().map(ToJson::to_json).collect();
        let mut fields = vec![
            ("seq_idx".to_string(), self.seq_idx.to_json()),
            ("t".to_string(), self.t.to_json()),
            ("history".to_string(), Json::Arr(history)),
        ];
        if let Some(injector) = &self.injector {
            fields.push((
                "injector_rng".to_string(),
                rng_state_to_json(&injector.rng.state()),
            ));
        }
        if let Some(faulted) = &self.faulted {
            fields.push((
                "faulted".to_string(),
                Json::obj([
                    ("graph", faulted.graph.to_json()),
                    ("removed", (faulted.removed as u64).to_json()),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), JsonError> {
        let seq_idx = usize::from_json(state.field("seq_idx")?)?;
        if seq_idx >= self.ctx.sequences.len() {
            return Err(JsonError(format!(
                "sequence index {seq_idx} out of range ({} sequences)",
                self.ctx.sequences.len()
            )));
        }
        let t = usize::from_json(state.field("t")?)?;
        if t < self.config.memory || t > self.ctx.sequences[seq_idx].len() {
            return Err(JsonError(format!("timestep {t} out of episode range")));
        }
        let history_json = match state.field("history")? {
            Json::Arr(items) => items,
            _ => return Err(JsonError("history must be an array".to_string())),
        };
        let mut matrices = Vec::with_capacity(history_json.len());
        for item in history_json {
            let dm = DemandMatrix::from_json(item)?;
            if dm.num_nodes() != self.ctx.graph.num_nodes() {
                return Err(JsonError("history matrix size mismatch".to_string()));
            }
            matrices.push(dm);
        }
        let injector_rng = match (&self.injector, state.field("injector_rng")) {
            (Some(_), Ok(json)) => Some(rng_state_from_json(json)?),
            (Some(_), Err(_)) => {
                return Err(JsonError(
                    "state lacks injector rng for a failure-injecting env".to_string(),
                ))
            }
            (None, _) => None,
        };
        if injector_rng == Some([0; 4]) {
            return Err(JsonError("all-zero injector rng state".to_string()));
        }
        let faulted = match state.field("faulted") {
            Ok(json) => {
                let graph = Graph::from_json(json.field("graph")?)?;
                if graph.num_nodes() != self.ctx.graph.num_nodes() {
                    return Err(JsonError("faulted graph node count mismatch".to_string()));
                }
                let removed = u64::from_json(json.field("removed")?)? as usize;
                Some(FaultedView::new(graph, removed))
            }
            Err(_) => None,
        };

        // All fields validated: commit.
        self.seq_idx = seq_idx;
        self.t = t;
        self.history.clear();
        for dm in matrices {
            self.history.push(dm);
        }
        if let (Some(injector), Some(rng_state)) = (self.injector.as_mut(), injector_rng) {
            injector.rng = StdRng::from_state(rng_state);
        }
        self.faulted = faulted;
        Ok(())
    }

    fn current_obs(&self) -> DdrObs {
        self.observation()
    }
}

/// Multi-graph environment: each episode runs on a randomly drawn
/// graph context (the Fig. 8 training setup).
#[derive(Debug)]
pub struct MultiGraphDdrEnv {
    contexts: Vec<GraphContext>,
    config: DdrEnvConfig,
    active: usize,
    seq_idx: usize,
    t: usize,
    history: DemandHistory,
}

impl MultiGraphDdrEnv {
    /// Creates the environment over the given graph mixture.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or any sequence is not longer
    /// than the memory.
    pub fn new(contexts: Vec<GraphContext>, config: DdrEnvConfig) -> Self {
        assert!(!contexts.is_empty(), "need at least one graph");
        for ctx in &contexts {
            for seq in &ctx.sequences {
                assert!(
                    seq.len() > config.memory,
                    "sequence length must exceed memory"
                );
            }
        }
        let history = DemandHistory::new(config.memory);
        MultiGraphDdrEnv {
            contexts,
            config,
            active: 0,
            seq_idx: 0,
            t: 0,
            history,
        }
    }

    /// The graph contexts in the mixture.
    pub fn contexts(&self) -> &[GraphContext] {
        &self.contexts
    }

    /// The currently active context (valid after a reset).
    pub fn active_context(&self) -> &GraphContext {
        &self.contexts[self.active]
    }

    fn observation(&self) -> DdrObs {
        let ctx = &self.contexts[self.active];
        let n = ctx.graph.num_nodes();
        let m_e = ctx.graph.num_edges();
        DdrObs {
            structure: Arc::clone(&ctx.structure),
            node_feats: node_features(&self.history, n, self.config.memory),
            edge_feats: Matrix::zeros(m_e, 3),
            globals: Matrix::zeros(1, 1),
            flat: flat_features(&self.history, n, self.config.memory),
            target_edge: None,
        }
    }
}

impl Env for MultiGraphDdrEnv {
    type Obs = DdrObs;

    fn reset(&mut self, rng: &mut StdRng) -> DdrObs {
        self.active = rng.gen_range(0..self.contexts.len());
        let ctx = &self.contexts[self.active];
        self.seq_idx = rng.gen_range(0..ctx.sequences.len());
        self.history.clear();
        for i in 0..self.config.memory {
            self.history.push(ctx.sequences[self.seq_idx][i].clone());
        }
        self.t = self.config.memory;
        self.observation()
    }

    fn step(&mut self, action: &[f64], _rng: &mut StdRng) -> Step<DdrObs> {
        let _span = gddr_telemetry::span("env.step");
        let ctx = &self.contexts[self.active];
        let weights = self.config.action_to_weights(action, ctx.graph.num_edges());
        let routing = softmin_routing(&ctx.graph, &weights, &self.config.softmin)
            .expect("action_to_weights yields positive finite weights");
        let seq = &ctx.sequences[self.seq_idx];
        let dm = &seq[self.t];
        let reward = -ctx.ratio(&routing, dm);
        self.history.push(dm.clone());
        self.t += 1;
        let done = self.t >= seq.len();
        Step {
            obs: self.observation(),
            reward,
            done,
        }
    }

    fn action_dim(&self) -> usize {
        self.contexts
            .iter()
            .map(|c| c.graph.num_edges())
            .max()
            .expect("non-empty mixture")
    }
}

/// Builds the paper's standard workload for a graph: `count` cyclical
/// bimodal sequences of `length` DMs with cycle `cycle` (§VIII-B/D:
/// 60 DMs, cycle 10).
pub fn standard_sequences(
    graph: &Graph,
    count: usize,
    length: usize,
    cycle: usize,
    rng: &mut StdRng,
) -> Vec<Vec<DemandMatrix>> {
    let params = gddr_traffic::gen::BimodalParams::default();
    (0..count)
        .map(|_| gddr_traffic::sequence::cyclical(graph.num_nodes(), cycle, length, &params, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_rng::SeedableRng;

    fn small_env() -> DdrEnv {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(0);
        let seqs = standard_sequences(&g, 2, 8, 4, &mut rng);
        let config = DdrEnvConfig {
            memory: 3,
            ..Default::default()
        };
        DdrEnv::new(GraphContext::new(g, seqs), config)
    }

    #[test]
    fn episode_walks_the_sequence() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = env.reset(&mut rng);
        assert_eq!(obs.node_feats.shape(), (6, 6));
        assert_eq!(obs.flat.len(), 3 * 36);
        let action = vec![0.0; env.action_dim()];
        let mut steps = 0;
        let mut done = false;
        while !done {
            let s = env.step(&action, &mut rng);
            assert!(s.reward < 0.0, "ratio reward is negative");
            assert!(s.reward >= -50.0, "reward out of plausible range");
            done = s.done;
            steps += 1;
            assert!(steps <= 8, "episode too long");
        }
        // length 8, memory 3 → 5 routed steps.
        assert_eq!(steps, 5);
    }

    #[test]
    fn reward_is_at_best_minus_one() {
        // U_agent >= U_opt always, so reward <= -1.
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(2);
        env.reset(&mut rng);
        let action = vec![0.3; env.action_dim()];
        let s = env.step(&action, &mut rng);
        assert!(
            s.reward <= -1.0 + 1e-6,
            "agent cannot beat the LP optimum: {}",
            s.reward
        );
    }

    #[test]
    fn action_weight_mapping_respects_range() {
        let cfg = DdrEnvConfig::default();
        let (lo, hi) = cfg.weight_range;
        for a in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let w = cfg.action_to_weight(a);
            assert!(w >= lo && w <= hi, "weight {w} outside [{lo}, {hi}]");
        }
        assert!((cfg.action_to_weight(0.0) - (lo + hi) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_cache_fills_once_per_distinct_dm() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(3);
        let action = vec![0.0; env.action_dim()];
        for _ in 0..2 {
            env.reset(&mut rng);
            let mut done = false;
            while !done {
                done = env.step(&action, &mut rng).done;
            }
        }
        // 2 sequences × cycle 4 → at most 8 distinct DMs.
        assert!(env.context().oracle.cache_len() <= 8);
    }

    #[test]
    fn multi_graph_env_switches_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let graphs = [zoo::cesnet(), zoo::janet()];
        let contexts: Vec<GraphContext> = graphs
            .iter()
            .map(|g| {
                let seqs = standard_sequences(g, 1, 6, 3, &mut rng);
                GraphContext::new(g.clone(), seqs)
            })
            .collect();
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let mut env = MultiGraphDdrEnv::new(contexts, config);
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..10 {
            let obs = env.reset(&mut rng);
            sizes.insert(obs.structure.num_nodes);
            // One full step works on whichever graph is active.
            let action = vec![0.1; obs.structure.num_edges];
            let s = env.step(&action, &mut rng);
            assert!(s.reward < 0.0);
        }
        assert_eq!(sizes.len(), 2, "both graphs should be sampled");
        assert_eq!(env.action_dim(), 2 * 11); // janet has 11 links
    }

    #[test]
    fn failure_injection_removes_links_but_episode_completes() {
        let g = zoo::cesnet();
        let base_edges = g.num_edges();
        let mut rng = StdRng::seed_from_u64(10);
        let seqs = standard_sequences(&g, 2, 8, 4, &mut rng);
        let config = DdrEnvConfig {
            memory: 3,
            ..Default::default()
        };
        let injector = FailureInjector::from_seed(2, 99);
        let mut env = DdrEnv::with_failures(GraphContext::new(g, seqs), config, injector);
        assert_eq!(
            env.action_dim(),
            base_edges,
            "action dim stays base-graph sized"
        );

        let mut rng = StdRng::seed_from_u64(11);
        env.reset(&mut rng);
        assert!(env.removed_links() >= 1, "cesnet tolerates removals");
        assert!(env.active_graph().num_edges() < base_edges);
        assert!(gddr_net::algo::is_strongly_connected(env.active_graph()));

        // A full episode on the degraded topology completes with
        // finite, sane rewards.
        let action = vec![0.0; env.action_dim()];
        let mut done = false;
        while !done {
            let s = env.step(&action, &mut rng);
            assert!(s.reward.is_finite());
            assert!(s.reward <= -1.0 + 1e-6, "optimum still bounds the agent");
            done = s.done;
        }
    }

    #[test]
    fn failure_patterns_are_deterministic_per_seed() {
        let g = zoo::cesnet();
        let episodes = |injector_seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(20);
            let seqs = standard_sequences(&g, 2, 8, 4, &mut rng);
            let config = DdrEnvConfig {
                memory: 3,
                ..Default::default()
            };
            let injector = FailureInjector::from_seed(1, injector_seed);
            let mut env =
                DdrEnv::with_failures(GraphContext::new(g.clone(), seqs), config, injector);
            let mut rng = StdRng::seed_from_u64(21);
            (0..4)
                .map(|_| {
                    env.reset(&mut rng);
                    env.active_graph().num_edges()
                })
                .collect()
        };
        assert_eq!(episodes(7), episodes(7), "same seed, same failures");
    }

    #[test]
    fn injector_preserves_connectivity_at_scale() {
        // Property: degrade() keeps any 100+ node graph strongly
        // connected under aggressive k, across generator families and
        // seeds — the guarantee the live-dynamics scenario engine
        // leans on when composing flaps on big WANs.
        use gddr_net::topology::hierarchical::hierarchical_wan_sized;
        use gddr_net::topology::random::{barabasi_albert, erdos_renyi};

        for seed in 0..4u64 {
            let mut gen_rng = StdRng::seed_from_u64(seed);
            let graphs = [
                erdos_renyi(100, 0.06, 100.0, &mut gen_rng),
                barabasi_albert(120, 2, 100.0, &mut gen_rng),
                hierarchical_wan_sized(150, &mut gen_rng),
            ];
            for g in &graphs {
                assert!(
                    gddr_net::algo::is_strongly_connected(g),
                    "generator precondition (seed {seed}, {})",
                    g.name()
                );
                for k in [5usize, 15, 40] {
                    let mut injector = FailureInjector::from_seed(k, seed ^ (k as u64) << 8);
                    let (degraded, removed) = injector.degrade(g);
                    assert!(
                        gddr_net::algo::is_strongly_connected(&degraded),
                        "disconnected after {removed} removals (k={k}, seed {seed}, {})",
                        g.name()
                    );
                    assert!(removed <= k);
                    assert_eq!(
                        degraded.num_edges(),
                        g.num_edges() - 2 * removed,
                        "each removal drops one undirected link"
                    );
                    assert_eq!(degraded.num_nodes(), g.num_nodes(), "node ids preserved");
                }
            }
        }
    }

    #[test]
    fn state_round_trip_restores_mid_episode_env() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(30);
        env.reset(&mut rng);
        let action = vec![0.2; env.action_dim()];
        env.step(&action, &mut rng);
        env.step(&action, &mut rng);

        let state = env.state_json();
        let obs_before = env.current_obs();

        // A fresh env restored from the state produces the identical
        // observation and finishes the episode with identical rewards.
        let mut restored = small_env();
        restored.restore_state(&state).unwrap();
        let obs_after = restored.current_obs();
        assert_eq!(obs_before.flat, obs_after.flat);

        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = StdRng::seed_from_u64(31);
        loop {
            let a = env.step(&action, &mut rng_a);
            let b = restored.step(&action, &mut rng_b);
            assert_eq!(a.reward, b.reward);
            assert_eq!(a.done, b.done);
            if a.done {
                break;
            }
        }
    }

    #[test]
    fn state_round_trip_covers_failure_injection() {
        let g = zoo::cesnet();
        let make = || {
            let mut rng = StdRng::seed_from_u64(40);
            let seqs = standard_sequences(&g, 2, 8, 4, &mut rng);
            let config = DdrEnvConfig {
                memory: 3,
                ..Default::default()
            };
            DdrEnv::with_failures(
                GraphContext::new(g.clone(), seqs),
                config,
                FailureInjector::from_seed(2, 5),
            )
        };
        let mut env = make();
        let mut rng = StdRng::seed_from_u64(41);
        env.reset(&mut rng);
        let action = vec![0.1; env.action_dim()];
        env.step(&action, &mut rng);

        let state = env.state_json();
        let mut restored = make();
        restored.restore_state(&state).unwrap();
        assert_eq!(
            restored.active_graph().num_edges(),
            env.active_graph().num_edges()
        );
        assert_eq!(restored.removed_links(), env.removed_links());

        // Both continue identically — including the *next* episode's
        // failure pattern, which draws from the restored injector RNG.
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        loop {
            let a = env.step(&action, &mut rng_a);
            let b = restored.step(&action, &mut rng_b);
            assert_eq!(a.reward, b.reward);
            if a.done {
                break;
            }
        }
        env.reset(&mut rng_a);
        restored.reset(&mut rng_b);
        assert_eq!(
            env.active_graph().num_edges(),
            restored.active_graph().num_edges()
        );
    }

    #[test]
    fn restore_rejects_corrupt_state_without_mutation() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(50);
        env.reset(&mut rng);
        let good = env.state_json();

        let mut bad = small_env();
        bad.reset(&mut rng);
        let before = bad.current_obs().flat.clone();
        // Out-of-range sequence index must be rejected cleanly.
        let corrupt = Json::obj([
            ("seq_idx", Json::Num(99.0)),
            ("t", Json::Num(3.0)),
            ("history", Json::Arr(vec![])),
        ]);
        assert!(bad.restore_state(&corrupt).is_err());
        assert_eq!(
            bad.current_obs().flat,
            before,
            "failed restore must not mutate"
        );
        // The good state still restores.
        assert!(bad.restore_state(&good).is_ok());
    }

    #[test]
    fn forced_lp_failure_degrades_reward_but_completes_episode() {
        let mut env = small_env();
        let mut rng = StdRng::seed_from_u64(60);
        env.reset(&mut rng);
        // Force every remaining oracle solve this episode through the
        // fallback ladder.
        env.context().oracle.inject_pivot_limit(100);
        let action = vec![0.0; env.action_dim()];
        let mut done = false;
        let mut steps = 0;
        while !done {
            let s = env.step(&action, &mut rng);
            assert!(s.reward.is_finite(), "degraded oracle keeps rewards finite");
            done = s.done;
            steps += 1;
        }
        assert_eq!(steps, 5);
        let stats = env.context().oracle.stats();
        assert!(stats.fallbacks > 0, "fallbacks must be counted");
    }

    #[test]
    fn try_paths_type_errors_instead_of_panicking() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(70);
        let seqs = standard_sequences(&g, 1, 6, 3, &mut rng);
        let config = DdrEnvConfig {
            memory: 2,
            ..Default::default()
        };
        let ctx = GraphContext::new(g.clone(), seqs);
        let m_e = g.num_edges();

        // Short action.
        assert!(matches!(
            config.try_action_to_weights(&vec![0.0; m_e - 1], m_e),
            Err(CoreError::ActionTooShort { .. })
        ));
        // NaN action entry.
        let mut nan_action = vec![0.0; m_e];
        nan_action[3] = f64::NAN;
        assert!(matches!(
            config.try_action_to_weights(&nan_action, m_e),
            Err(CoreError::Routing(_))
        ));
        // The happy path matches the panicking wrapper.
        let ok = config.try_action_to_weights(&vec![0.1; m_e], m_e).unwrap();
        assert_eq!(ok, config.action_to_weights(&vec![0.1; m_e], m_e));

        let weights = vec![1.0; m_e];
        let routing = softmin_routing(&g, &weights, &config.softmin).unwrap();
        // Mismatched demand matrix.
        let wrong = DemandMatrix::zeros(g.num_nodes() + 2);
        assert!(matches!(
            ctx.try_ratio(&routing, &wrong),
            Err(CoreError::DemandMismatch { .. })
        ));
        // Non-finite demand. `from_fn` bypasses `set`'s checks, but its
        // `.max(0.0)` clamp scrubs NaN — infinity is the one non-finite
        // value constructible in-tree.
        let inf_dm = DemandMatrix::from_fn(g.num_nodes(), |s, t| {
            if (s, t) == (0, 1) {
                f64::INFINITY
            } else {
                0.0
            }
        });
        assert!(matches!(
            ctx.try_ratio(&routing, &inf_dm),
            Err(CoreError::NonFiniteDemand { src: 0, dst: 1 })
        ));
        // A well-formed matrix routes fine.
        let good = &ctx.sequences[0][3];
        let outcome = ctx.try_ratio(&routing, good).unwrap();
        assert!(outcome.ratio >= 1.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "must exceed memory")]
    fn rejects_short_sequences() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(5);
        let seqs = standard_sequences(&g, 1, 3, 3, &mut rng);
        DdrEnv::new(
            GraphContext::new(g, seqs),
            DdrEnvConfig {
                memory: 5,
                ..Default::default()
            },
        );
    }
}
