//! Typed errors for request-reachable core paths.
//!
//! Evaluation and reward computation originally asserted their
//! preconditions — fine for offline experiment harnesses, fatal for an
//! online serving worker where a malformed traffic matrix must degrade
//! the response instead of aborting the thread. Every condition a serve
//! request can reach is expressed here as a [`CoreError`]; the
//! panicking convenience wrappers remain for the offline paths and
//! document that they delegate to the fallible versions.

use std::fmt;

/// A typed failure from evaluation or reward computation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No ratios to aggregate (empty evaluation input).
    EmptyEvaluation,
    /// A demand sequence is not longer than the configured memory, so
    /// there is no step to evaluate.
    SequenceTooShort {
        /// Sequence length.
        len: usize,
        /// Configured demand-history length.
        memory: usize,
    },
    /// A demand matrix does not match the graph's node count.
    DemandMismatch {
        /// Nodes the graph has.
        expected: usize,
        /// Nodes the matrix has.
        got: usize,
    },
    /// A demand matrix contains a NaN or infinite entry.
    NonFiniteDemand {
        /// Source node of the offending entry.
        src: usize,
        /// Destination node of the offending entry.
        dst: usize,
    },
    /// A policy action supplies fewer weights than the graph has edges.
    ActionTooShort {
        /// Weights the action provides.
        got: usize,
        /// Edges the graph needs.
        need: usize,
    },
    /// Softmin translation rejected the weights.
    Routing(String),
    /// The flow simulator rejected the routing (lost traffic or an
    /// uncovered commodity).
    Simulation(String),
    /// The LP oracle failed to produce an optimum.
    Oracle(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyEvaluation => write!(f, "no ratios to aggregate"),
            CoreError::SequenceTooShort { len, memory } => {
                write!(f, "sequence length {len} must exceed memory {memory}")
            }
            CoreError::DemandMismatch { expected, got } => {
                write!(f, "demand matrix has {got} nodes, graph has {expected}")
            }
            CoreError::NonFiniteDemand { src, dst } => {
                write!(f, "non-finite demand at ({src}, {dst})")
            }
            CoreError::ActionTooShort { got, need } => {
                write!(f, "action provides {got} weights, graph needs {need}")
            }
            CoreError::Routing(msg) => write!(f, "softmin translation failed: {msg}"),
            CoreError::Simulation(msg) => write!(f, "flow simulation failed: {msg}"),
            CoreError::Oracle(msg) => write!(f, "LP oracle failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errors = [
            CoreError::EmptyEvaluation,
            CoreError::SequenceTooShort { len: 3, memory: 5 },
            CoreError::DemandMismatch {
                expected: 12,
                got: 9,
            },
            CoreError::NonFiniteDemand { src: 1, dst: 2 },
            CoreError::ActionTooShort { got: 4, need: 8 },
            CoreError::Routing("gamma".into()),
            CoreError::Simulation("lost traffic".into()),
            CoreError::Oracle("pivot limit".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
