//! Deterministic structured fuzzer on `gddr-rng`.
//!
//! A fuzz case is three values — `(target, seed, size)` — and every
//! generator draws all randomness from `StdRng::seed_from_u64(seed)`,
//! so a case reproduces bit-for-bit on any machine. Failures shrink
//! greedily over `size` to a minimal counterexample and serialise to a
//! one-line JSON replay file; `fuzz_harness --replay <file>` reruns it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use gddr_lp::simplex::solve;
use gddr_lp::{mcf, LinearProgram, LpError, Relation};
use gddr_net::topology::random::erdos_renyi;
use gddr_net::topology::{mutate, text};
use gddr_net::{dot, Graph};
use gddr_rng::rngs::StdRng;
use gddr_rng::{Rng, SeedableRng};
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_ser::{FromJson, Json, JsonError, ToJson};
use gddr_traffic::DemandMatrix;

use crate::diff::{brute_force_lp, path_enumeration_loads};
use crate::gradcheck;
use crate::invariants::{check_graph, check_routing, check_utilisation_bound};
use crate::lp_cert::{check_certificate, DEFAULT_TOL};

/// One reproducible fuzz input: a target name, the PRNG seed and a
/// structural size knob the shrinker minimises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Which property to exercise — see [`all_targets`].
    pub target: String,
    /// Seed for every random draw the case makes.
    pub seed: u64,
    /// Structural size (graph nodes, LP rows, mutation count, …).
    pub size: u64,
}

impl ToJson for FuzzCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("target", Json::Str(self.target.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("size", Json::Num(self.size as f64)),
        ])
    }
}

impl FromJson for FuzzCase {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_field = |key: &str| -> Result<String, JsonError> {
            match json.field(key)? {
                Json::Str(s) => Ok(s.clone()),
                other => Err(JsonError(format!("{key}: expected string, got {other:?}"))),
            }
        };
        let num_field = |key: &str| -> Result<u64, JsonError> {
            match json.field(key)? {
                Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v as u64),
                other => Err(JsonError(format!(
                    "{key}: expected a non-negative integer, got {other:?}"
                ))),
            }
        };
        Ok(FuzzCase {
            target: str_field("target")?,
            seed: num_field("seed")?,
            size: num_field("size")?,
        })
    }
}

impl FuzzCase {
    /// The one-line JSON replay representation.
    pub fn to_replay_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a replay file's contents.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or missing fields.
    pub fn from_replay_string(text: &str) -> Result<Self, JsonError> {
        FuzzCase::from_json(&Json::parse(text.trim())?)
    }
}

/// Result of running one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The property held.
    Pass,
    /// The property failed (or the code under test panicked).
    Fail {
        /// What went wrong.
        message: String,
        /// Whether the failure was a caught panic rather than a typed
        /// property violation.
        panicked: bool,
    },
}

impl Outcome {
    /// Whether this outcome is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail { .. })
    }
}

/// A failing case plus its diagnosis, as collected by [`sweep`].
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The failing input (post-shrink if the caller shrank it).
    pub case: FuzzCase,
    /// Failure message.
    pub message: String,
    /// Whether the case panicked (vs a typed violation).
    pub panicked: bool,
}

/// Every fuzz target, including the deliberately broken `planted`
/// target used to test the harness itself.
pub fn all_targets() -> &'static [&'static str] {
    &[
        "routing_valid",
        "routing_rejects_bad_weights",
        "softmin_differential",
        "lp_certificate",
        "lp_differential",
        "demand_matrix",
        "parse_topology_no_panic",
        "parse_dot_no_panic",
        "mutate_invariants",
        "gradcheck",
        "serve_request",
        "telemetry_events",
        "scenario_plan",
        "snapshot_decode",
        "planted",
    ]
}

/// The CI seed-set targets: everything except `planted` (which exists
/// to prove the harness catches, shrinks and replays real failures).
pub fn ci_targets() -> Vec<&'static str> {
    all_targets()
        .iter()
        .copied()
        .filter(|&t| t != "planted")
        .collect()
}

// ---------------------------------------------------------------------
// Generators. All randomness flows from the case's seed; `size` sets
// the structural scale so shrinking it shrinks the instance.
// ---------------------------------------------------------------------

fn gen_graph(rng: &mut StdRng, size: u64) -> Graph {
    let n = 3 + (size as usize % 10);
    let p = rng.gen_range(0.15..0.6);
    erdos_renyi(n, p, rng.gen_range(50.0..500.0), rng)
}

fn gen_weights(rng: &mut StdRng, m: usize) -> Vec<f64> {
    (0..m).map(|_| rng.gen_range(0.1..10.0)).collect()
}

/// A weight vector with one adversarial entry injected.
fn gen_bad_weights(rng: &mut StdRng, m: usize) -> (Vec<f64>, usize) {
    let mut w = gen_weights(rng, m);
    let idx = rng.gen_range(0..m);
    w[idx] = match rng.gen_range(0u8..5) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -rng.gen_range(0.1..5.0),
        _ => 0.0,
    };
    (w, idx)
}

fn gen_demand(rng: &mut StdRng, n: usize) -> DemandMatrix {
    let mut dm = DemandMatrix::zeros(n);
    for s in 0..n {
        for t in 0..n {
            if s != t && rng.gen_range(0.0..1.0) < 0.4 {
                dm.set(s, t, rng.gen_range(0.5..20.0));
            }
        }
    }
    dm
}

/// A feasible-by-witness LP with box bounds, occasionally degenerate
/// (duplicated rows, zero RHS contributions).
fn gen_feasible_lp(rng: &mut StdRng, size: u64) -> LinearProgram {
    let n = 2 + (size as usize % 3);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
    let mut lp = LinearProgram::new(n);
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    lp.set_objective(&obj);
    let rows = 1 + (size as usize % 4);
    for _ in 0..rows {
        let coeffs: Vec<(usize, f64)> = (0..n).map(|i| (i, rng.gen_range(-3.0..3.0))).collect();
        let lhs: f64 = coeffs.iter().map(|&(i, c)| c * x0[i]).sum();
        let dup = rng.gen_range(0u8..4) == 0;
        match rng.gen_range(0u8..3) {
            0 => lp.add_constraint(&coeffs, Relation::Le, lhs + rng.gen_range(0.0..2.0)),
            1 => lp.add_constraint(&coeffs, Relation::Ge, lhs - rng.gen_range(0.0..2.0)),
            _ => lp.add_constraint(&coeffs, Relation::Eq, lhs),
        }
        if dup {
            // Degeneracy magnet: an exactly duplicated equality.
            lp.add_constraint(&coeffs, Relation::Eq, lhs);
        }
    }
    for i in 0..n {
        lp.add_constraint(&[(i, 1.0)], Relation::Le, 10.0);
    }
    lp
}

/// A small LP that may or may not be feasible, always box-bounded so
/// the brute-force reference is exact.
fn gen_any_lp(rng: &mut StdRng, size: u64) -> LinearProgram {
    let n = 2 + (size as usize % 2);
    let mut lp = LinearProgram::new(n);
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    lp.set_objective(&obj);
    let rows = 1 + (size as usize % 3);
    for _ in 0..rows {
        let coeffs: Vec<(usize, f64)> = (0..n).map(|i| (i, rng.gen_range(-2.0..2.0))).collect();
        let rel = match rng.gen_range(0u8..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        lp.add_constraint(&coeffs, rel, rng.gen_range(-4.0..4.0));
    }
    for i in 0..n {
        lp.add_constraint(&[(i, 1.0)], Relation::Le, 8.0);
    }
    lp
}

/// Structured text mutation: deletes, duplicates, truncates lines and
/// injects garbage tokens into an initially valid document.
fn mutate_text(rng: &mut StdRng, valid: &str, edits: usize) -> String {
    let mut lines: Vec<String> = valid.lines().map(str::to_string).collect();
    for _ in 0..edits {
        if lines.is_empty() {
            lines.push("garbage".to_string());
            continue;
        }
        let i = rng.gen_range(0..lines.len());
        match rng.gen_range(0u8..6) {
            0 => {
                lines.remove(i);
            }
            1 => {
                let l = lines[i].clone();
                lines.insert(i, l);
            }
            2 => {
                let cut = rng.gen_range(0..=lines[i].chars().count());
                lines[i] = lines[i].chars().take(cut).collect();
            }
            3 => {
                let mut toks: Vec<&str> = lines[i].split(' ').collect();
                if toks.len() >= 2 {
                    let a = rng.gen_range(0..toks.len());
                    let b = rng.gen_range(0..toks.len());
                    toks.swap(a, b);
                }
                lines[i] = toks.join(" ");
            }
            4 => {
                let garbage = ["-> ->", "\"", "nan", "}", "node node", "-1e999", "🦀"];
                let g = garbage[rng.gen_range(0..garbage.len())];
                lines[i] = format!("{} {g}", lines[i]);
            }
            _ => {
                lines.insert(i, "total garbage ! [ ;".to_string());
            }
        }
    }
    lines.join("\n")
}

// ---------------------------------------------------------------------
// Targets.
// ---------------------------------------------------------------------

fn fail(message: impl Into<String>) -> Result<(), String> {
    Err(message.into())
}

fn target_routing_valid(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size);
    let w = gen_weights(&mut rng, g.num_edges());
    let routing = softmin_routing(&g, &w, &SoftminConfig::default())
        .map_err(|e| format!("valid weights rejected: {e}"))?;
    let violations = check_routing(&g, &routing);
    if !violations.is_empty() {
        return fail(format!("routing invariants: {}", violations[0]));
    }
    let dm = gen_demand(&mut rng, g.num_nodes());
    let report =
        max_link_utilisation(&g, &routing, &dm).map_err(|e| format!("simulation failed: {e}"))?;
    if !report.u_max.is_finite() || report.u_max < 0.0 {
        return fail(format!("non-finite U_max {}", report.u_max));
    }
    // On small instances, verify the routing cannot beat the LP optimum.
    if g.num_nodes() <= 6 && dm.total() > 0.0 {
        let opt = mcf::min_max_utilisation(&g, &dm).map_err(|e| format!("oracle failed: {e}"))?;
        let violations = check_utilisation_bound(report.u_max, opt.u_max, 1e-6);
        if !violations.is_empty() {
            return fail(format!("optimality bound: {}", violations[0]));
        }
    }
    Ok(())
}

fn target_routing_rejects_bad_weights(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size);
    let (w, idx) = gen_bad_weights(&mut rng, g.num_edges());
    match softmin_routing(&g, &w, &SoftminConfig::default()) {
        Err(_) => Ok(()),
        Ok(_) => fail(format!(
            "weight {} at edge {idx} was accepted by softmin_routing",
            w[idx]
        )),
    }
}

fn target_softmin_differential(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 3 + (size as usize % 4); // Tiny: exhaustive enumeration.
    let g = erdos_renyi(n, 0.4, 100.0, &mut rng);
    let w = gen_weights(&mut rng, g.num_edges());
    let routing = softmin_routing(&g, &w, &SoftminConfig::default())
        .map_err(|e| format!("softmin failed: {e}"))?;
    let s = rng.gen_range(0..n);
    let t = (s + 1 + rng.gen_range(0..n - 1)) % n;
    if s == t {
        return Ok(());
    }
    let mut dm = DemandMatrix::zeros(n);
    dm.set(s, t, 1.0);
    let report = max_link_utilisation(&g, &routing, &dm)
        .map_err(|e| format!("simulation failed on unit demand {s}->{t}: {e}"))?;
    let loads = path_enumeration_loads(&g, &routing, s, t, 1_000_000)
        .ok_or_else(|| format!("ratio subgraph for {s}->{t} is cyclic or path-explosive"))?;
    for (e, (path_load, sim_load)) in loads.iter().zip(&report.loads).enumerate() {
        if (path_load - sim_load).abs() > 1e-6 {
            return fail(format!(
                "edge {e} load: paths {path_load} vs simulator {sim_load}"
            ));
        }
    }
    Ok(())
}

fn target_lp_certificate(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lp = gen_feasible_lp(&mut rng, size);
    let sol = solve(&lp).map_err(|e| format!("feasible-by-witness LP failed: {e}"))?;
    let violations = check_certificate(&lp, &sol, DEFAULT_TOL);
    if violations.is_empty() {
        Ok(())
    } else {
        fail(format!(
            "{} certificate violations, first: {}",
            violations.len(),
            violations[0]
        ))
    }
}

fn target_lp_differential(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lp = gen_any_lp(&mut rng, size);
    let reference = brute_force_lp(&lp);
    match (solve(&lp), reference) {
        (Ok(sol), Some((obj, _))) => {
            if (sol.objective - obj).abs() > 1e-6 * (1.0 + obj.abs()) {
                fail(format!("simplex {} vs brute force {obj}", sol.objective))
            } else {
                Ok(())
            }
        }
        (Err(LpError::Infeasible), None) => Ok(()),
        (Ok(sol), None) => fail(format!(
            "simplex found {} but brute force says infeasible",
            sol.objective
        )),
        (Err(LpError::Infeasible), Some((obj, _))) => {
            fail(format!("simplex says infeasible, brute force found {obj}"))
        }
        (Err(e), _) => fail(format!("simplex error on boxed LP: {e}")),
    }
}

fn target_demand_matrix(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size.min(4)); // Keep the LP small.
    let n = g.num_nodes();
    let dm = gen_demand(&mut rng, n);
    match mcf::min_max_utilisation(&g, &dm) {
        Ok(sol) if sol.u_max.is_finite() && sol.u_max >= 0.0 => {}
        Ok(sol) => return fail(format!("oracle returned U_opt = {}", sol.u_max)),
        Err(e) => return fail(format!("valid demand matrix rejected: {e}")),
    }
    // A size-mismatched matrix must be a typed error, never a panic.
    let wrong = gen_demand(&mut rng, n + 1);
    match mcf::min_max_utilisation(&g, &wrong) {
        Err(LpError::InvalidInput(_)) => {}
        Err(e) => return fail(format!("expected InvalidInput, got {e}")),
        Ok(sol) => {
            return fail(format!(
                "size-mismatched demand accepted with U_opt = {}",
                sol.u_max
            ))
        }
    }
    // Non-finite demand is rejected at construction: `DemandMatrix::set`
    // must refuse it (so NaN can never reach the oracle at all).
    let s = rng.gen_range(0..n);
    let t = (s + 1) % n;
    let bad_value = if rng.gen_range(0u8..3) == 0 {
        f64::NAN
    } else if rng.gen_range(0u8..2) == 0 {
        f64::INFINITY
    } else {
        -rng.gen_range(0.1..5.0)
    };
    let rejected = catch_unwind(AssertUnwindSafe(|| {
        let mut dm = DemandMatrix::zeros(n);
        dm.set(s, t, bad_value);
    }))
    .is_err();
    if rejected {
        Ok(())
    } else {
        fail(format!("DemandMatrix accepted demand {bad_value}"))
    }
}

fn target_parse_topology_no_panic(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size);
    let valid = text::to_text(&g);
    let edits = 1 + (size as usize % 6);
    let mutated = mutate_text(&mut rng, &valid, edits);
    // Ok and Err are both acceptable; the property is "no panic" (the
    // harness catches unwinds) and "Ok graphs are well-formed".
    if let Ok(parsed) = text::parse_topology(&mutated) {
        for e in parsed.edges() {
            let cap = parsed.capacity(e);
            if !(cap.is_finite() && cap > 0.0) {
                return fail(format!("parser accepted capacity {cap}"));
            }
        }
    }
    Ok(())
}

fn target_parse_dot_no_panic(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size);
    let valid = dot::to_dot(&g);
    let edits = 1 + (size as usize % 6);
    let mutated = mutate_text(&mut rng, &valid, edits);
    if let Ok(parsed) = dot::parse_dot(&mutated) {
        for e in parsed.edges() {
            let cap = parsed.capacity(e);
            if !(cap.is_finite() && cap > 0.0) {
                return fail(format!("parser accepted capacity {cap}"));
            }
        }
    }
    Ok(())
}

fn target_mutate_invariants(seed: u64, size: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen_graph(&mut rng, size);
    let edits = 1 + (size as usize % 5);
    let mutated = mutate::random_edits(&g, edits, &mut rng);
    let violations = check_graph(&mutated);
    if violations.is_empty() {
        Ok(())
    } else {
        fail(format!("after {edits} edits: {}", violations[0]))
    }
}

fn target_gradcheck(seed: u64, _size: u64) -> Result<(), String> {
    let report = gradcheck::check_all(seed);
    if report.ok() {
        Ok(())
    } else {
        fail(format!(
            "max relative error {} at {}",
            report.max_rel_err, report.worst
        ))
    }
}

/// Serving never drops a request: drive a small inline-mode
/// controller with a hostile request mix — valid bimodal traffic,
/// infinite demands, wrong-size and zero-node matrices, zero
/// deadlines, random bursts against a tiny queue — and require that
/// every submitted request gets exactly one response, every response
/// carries a routing valid for the graph, and only valid requests
/// with a real deadline ever earn fresh inference.
fn target_serve_request(seed: u64, size: u64) -> Result<(), String> {
    use gddr_core::{DdrEnvConfig, MlpPolicy};
    use gddr_serve::{
        Controller, ControllerConfig, EngineFactory, EpochRequest, InferenceEngine, PolicyEngine,
        Rung,
    };
    use std::sync::Arc;

    let mut rng = StdRng::seed_from_u64(seed);
    let n = 4;
    let graph = gddr_net::topology::from_links(
        "fuzz-serve",
        n,
        &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)],
        100.0,
    );
    let memory = 2;
    let factory: EngineFactory = Arc::new(move |g: &Graph| {
        let mut prng = StdRng::seed_from_u64(0xfee1);
        let policy = MlpPolicy::new(memory, g.num_nodes(), g.num_edges(), &[4], -0.5, &mut prng);
        Box::new(PolicyEngine::new(policy, g, memory)) as Box<dyn InferenceEngine>
    });
    let mut config = ControllerConfig {
        queue_capacity: 1 + (size as usize % 4),
        // Oracle scoring on some cases only: it exercises the breaker
        // path but costs an LP solve per request.
        score_responses: seed.is_multiple_of(4),
        ..ControllerConfig::default()
    };
    config.pool.workers = 1;
    let mut controller = Controller::new(
        graph,
        DdrEnvConfig {
            memory,
            ..DdrEnvConfig::default()
        },
        config,
        factory,
    );

    let rounds = 2 + (size as usize % 12);
    let mut submitted: u64 = 0;
    let mut answered: u64 = 0;
    let mut valid_by_epoch: Vec<bool> = Vec::new();

    let check = |resp: &gddr_serve::RouteResponse,
                 controller: &Controller,
                 valid_by_epoch: &[bool]|
     -> Result<(), String> {
        if !resp.routing.validate(controller.graph()).is_empty() {
            return Err(format!(
                "response for request {} carries an invalid routing",
                resp.epoch
            ));
        }
        let was_valid = *valid_by_epoch
            .get(resp.epoch as usize)
            .ok_or_else(|| format!("response for unknown request {}", resp.epoch))?;
        if resp.rung == Rung::Fresh && !was_valid {
            return Err(format!(
                "malformed request {} was served fresh inference",
                resp.epoch
            ));
        }
        if resp.rung == Rung::Fresh && resp.shed {
            return Err(format!("request {} both shed and fresh", resp.epoch));
        }
        Ok(())
    };

    for _ in 0..rounds {
        let burst = 1 + (rng.next_u64() % 3);
        let mut responses = Vec::new();
        for _ in 0..burst {
            let kind = rng.next_u64() % 8;
            let (demands, deadline_ms, valid) =
                match kind {
                    // NaN itself is unconstructible in-tree (`from_fn`
                    // clamps it away); infinity is the non-finite probe.
                    0 => (
                        DemandMatrix::from_fn(n, |s, d| {
                            if s == 0 && d == 1 {
                                f64::INFINITY
                            } else {
                                1.0
                            }
                        }),
                        50,
                        false,
                    ),
                    1 => (DemandMatrix::zeros(0), 50, false),
                    2 => {
                        let wrong = 1 + (rng.next_u64() as usize % 9);
                        let valid = wrong == n;
                        (DemandMatrix::zeros(wrong), 50, valid)
                    }
                    3 => (gen_demand(&mut rng, n), 0, false),
                    _ => (gen_demand(&mut rng, n), 50, true),
                };
            let req = EpochRequest {
                epoch: submitted,
                demands,
                deadline_ms,
            };
            // Zero-deadline requests are well-formed but can never be
            // served fresh.
            valid_by_epoch.push(valid && deadline_ms > 0);
            submitted += 1;
            responses.extend(controller.enqueue(req));
        }
        while let Some(resp) = controller.process_next() {
            responses.push(resp);
        }
        for resp in &responses {
            answered += 1;
            check(resp, &controller, &valid_by_epoch)?;
        }
    }

    if answered != submitted {
        return fail(format!(
            "submitted {submitted} requests but {answered} answered"
        ));
    }
    if controller.stats().responses() != answered {
        return fail(format!(
            "stats disagree: {} recorded vs {answered} observed",
            controller.stats().responses()
        ));
    }
    Ok(())
}

/// Round-trips randomly generated observability events — trace spans,
/// trace annotations, SLO alerts — through the JSONL telemetry codec
/// with hostile attribute strings (quotes, backslashes, newlines,
/// NULs, multi-byte scalars), then feeds a mutated line back through
/// the parser, which must reject it with a typed error, never a panic
/// and never a silent accept.
fn target_telemetry_events(seed: u64, size: u64) -> Result<(), String> {
    use gddr_telemetry::{parse_jsonl, Event};
    let mut rng = StdRng::seed_from_u64(seed);
    let hostile = |rng: &mut StdRng| -> String {
        const POOL: &[&str] = &[
            "plain",
            "q\"uote",
            "back\\slash",
            "new\nline",
            "tab\there",
            "\u{1F980}",
            "",
            "nul\u{0}byte",
            "ctrl\u{1}\u{1f}",
        ];
        POOL[(rng.next_u64() as usize) % POOL.len()].to_string()
    };
    let count = 1 + (size as usize % 24);
    let mut events = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let attrs: Vec<(String, String)> = (0..rng.next_u64() % 4)
            .map(|k| (format!("k{k}"), hostile(&mut rng)))
            .collect();
        events.push(match rng.next_u64() % 3 {
            0 => Event::TraceSpan {
                trace_id: 1 + rng.next_u64() % 1000,
                shard: rng.next_u64() % 16,
                name: hostile(&mut rng),
                start_us: rng.next_u64() % 1_000_000,
                dur_ns: rng.next_u64() % 1_000_000_000,
                attrs,
            },
            1 => Event::TraceAnnotation {
                trace_id: 1 + rng.next_u64() % 1000,
                shard: rng.next_u64() % 16,
                name: hostile(&mut rng),
                at_us: rng.next_u64() % 1_000_000,
                attrs,
            },
            _ => Event::SloAlert {
                shard: rng.next_u64() % 16,
                metric: hostile(&mut rng),
                burn_rate: rng.gen_range(0.0..64.0),
                threshold: 4.0,
                window: 1 + rng.next_u64() % 256,
                epoch: i,
            },
        });
    }
    let text: String = events
        .iter()
        .map(|e| e.to_json().to_string() + "\n")
        .collect();
    let back = parse_jsonl(&text).map_err(|e| format!("round-trip parse failed: {e}"))?;
    if back != events {
        return fail("parsed events disagree with the originals".to_string());
    }
    let again: String = back
        .iter()
        .map(|e| e.to_json().to_string() + "\n")
        .collect();
    if again != text {
        return fail("re-serialisation is not byte-stable".to_string());
    }

    // Adversarial half: truncating a line, renaming the type tag, or
    // appending garbage must all be rejected with a typed error (the
    // harness's catch_unwind turns any panic into a failure).
    let lines: Vec<&str> = text.lines().collect();
    let victim = lines[(rng.next_u64() as usize) % lines.len()];
    let mutated: String = match rng.next_u64() % 3 {
        // Char-boundary-safe truncation: always loses the closing brace.
        0 => victim.chars().take(victim.chars().count() / 2).collect(),
        1 => victim.replacen("\"type\":", "\"tpye\":", 1),
        _ => format!("{victim}garbage"),
    };
    if parse_jsonl(&mutated).is_ok() {
        return fail(format!("mutated line unexpectedly parsed: {mutated:?}"));
    }
    Ok(())
}

/// Dynamics plans are data, not code: throw randomly generated —
/// mostly malformed — [`gddr_serve::DynamicsPlan`]s at validation and
/// timeline compilation. Malformed plans (zero timers/strides,
/// out-of-range edges and replica windows, non-finite or out-of-range
/// drain factors, overflowing event horizons) must come back as typed
/// [`gddr_serve::ScenarioError`]s, never a panic; well-formed plans
/// must validate, and when they compile the resulting timeline must be
/// deterministic (bit-identical event digest on recompile) and keep
/// every emitted topology strongly connected.
fn target_scenario_plan(seed: u64, size: u64) -> Result<(), String> {
    use gddr_serve::{DynamicsEvent, DynamicsPlan, DynamicsTimeline, MAX_HORIZON};

    let mut rng = StdRng::seed_from_u64(seed);
    let graph = gen_graph(&mut rng, size);
    let m = graph.num_edges();
    let replica_count = 1 + (rng.next_u64() as usize % 4);

    let mut plan = DynamicsPlan::new();
    let mut malformed = false;
    let events = 1 + (size as usize % 6);
    for _ in 0..events {
        let tick = (rng.next_u64() % 12) as usize;
        // Roughly half the events are degenerate by construction.
        let (tick, event) = match rng.next_u64() % 12 {
            0 => {
                malformed = true;
                (
                    tick,
                    DynamicsEvent::LinkFlap {
                        count: 0,
                        repair_after: 1 + (rng.next_u64() as usize % 5),
                    },
                )
            }
            1 => {
                malformed = true;
                (
                    tick,
                    DynamicsEvent::FlapEdge {
                        edge: m + (rng.next_u64() as usize % 7),
                        repair_after: 2,
                    },
                )
            }
            2 => {
                malformed = true;
                let factor = match rng.next_u64() % 5 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => -rng.gen_range(0.1..2.0),
                    3 => 0.0,
                    _ => 1.0 + rng.gen_range(0.1..4.0),
                };
                (
                    tick,
                    DynamicsEvent::CapacityDrain {
                        factor,
                        restore_after: 2,
                    },
                )
            }
            3 => {
                malformed = true;
                (
                    tick,
                    DynamicsEvent::MaintenanceWindow {
                        first_replica: replica_count + (rng.next_u64() as usize % 3),
                        replicas: 1,
                        stride: 1,
                    },
                )
            }
            4 => {
                malformed = true;
                // Zero stride or zero replicas, alternating.
                let zero_stride = rng.next_u64() % 2 == 0;
                (
                    tick,
                    DynamicsEvent::MaintenanceWindow {
                        first_replica: 0,
                        replicas: if zero_stride { 1 } else { 0 },
                        stride: if zero_stride { 0 } else { 1 },
                    },
                )
            }
            5 => {
                malformed = true;
                // Horizon overflow: an end tick past MAX_HORIZON or
                // past usize::MAX entirely.
                match rng.next_u64() % 3 {
                    0 => (
                        usize::MAX - (rng.next_u64() as usize % 3),
                        DynamicsEvent::LinkFlap {
                            count: 1,
                            repair_after: 2 + (rng.next_u64() as usize % 9),
                        },
                    ),
                    1 => (
                        tick,
                        DynamicsEvent::CapacityDrain {
                            factor: 0.5,
                            restore_after: MAX_HORIZON + 1 + (rng.next_u64() as usize % 9),
                        },
                    ),
                    _ => (
                        tick,
                        DynamicsEvent::MaintenanceWindow {
                            first_replica: 0,
                            replicas: 2.max(replica_count),
                            stride: usize::MAX / 2,
                        },
                    ),
                }
            }
            6 | 7 => (
                tick,
                DynamicsEvent::LinkFlap {
                    count: 1 + (rng.next_u64() as usize % 2),
                    repair_after: 1 + (rng.next_u64() as usize % 5),
                },
            ),
            8 => (
                tick,
                DynamicsEvent::FlapEdge {
                    edge: rng.next_u64() as usize % m,
                    repair_after: 1 + (rng.next_u64() as usize % 5),
                },
            ),
            9 | 10 => (
                tick,
                DynamicsEvent::CapacityDrain {
                    factor: rng.gen_range(0.3..1.0),
                    restore_after: 1 + (rng.next_u64() as usize % 5),
                },
            ),
            _ => {
                let first = rng.next_u64() as usize % replica_count;
                (
                    tick,
                    DynamicsEvent::MaintenanceWindow {
                        first_replica: first,
                        replicas: 1 + (rng.next_u64() as usize % (replica_count - first)),
                        stride: 1 + (rng.next_u64() as usize % 3),
                    },
                )
            }
        };
        plan = plan.at(tick, event);
    }

    let validated = plan.validate(&graph, replica_count);
    if malformed {
        match validated {
            Err(e) => {
                // Display must not panic on any variant.
                let _ = e.to_string();
                return Ok(());
            }
            Ok(()) => {
                return fail("plan with a malformed event passed validation".to_string());
            }
        }
    }
    validated.map_err(|e| format!("well-formed plan rejected: {e}"))?;

    // A valid plan may still fail to compile for composition reasons
    // (e.g. a FlapEdge that would disconnect the WAN) — those must be
    // typed errors too; a successful compile must be deterministic and
    // keep every snapshot strongly connected.
    match DynamicsTimeline::compile(&plan, &graph, replica_count, seed) {
        Err(e) => {
            let _ = e.to_string();
            Ok(())
        }
        Ok(tl) => {
            let again = DynamicsTimeline::compile(&plan, &graph, replica_count, seed)
                .map_err(|e| format!("recompile of a compilable plan failed: {e}"))?;
            if tl.event_sequence() != again.event_sequence() {
                return fail(format!(
                    "non-deterministic compile: {:?} vs {:?}",
                    tl.event_sequence(),
                    again.event_sequence()
                ));
            }
            if tl.horizon() != again.horizon() {
                return fail("non-deterministic horizon".to_string());
            }
            for tick in 0..=tl.horizon() {
                if let Some(actions) = tl.actions(tick) {
                    if let Some(topo) = &actions.topology {
                        if !gddr_net::algo::is_strongly_connected(topo) {
                            return fail(format!("snapshot at tick {tick} is disconnected"));
                        }
                    }
                }
            }
            Ok(())
        }
    }
}

/// The durable-snapshot codec never panics and never silently accepts
/// damage: build a valid [`gddr_store::FleetSnapshot`] with hostile
/// shard names and state trees, require the framed record to decode
/// back to a byte-identical fixed point, then attack the frame —
/// truncation at a random prefix, a single bit flip anywhere, trailing
/// garbage, a rewritten magic/version byte, and free-form random bytes
/// — and require every attack to come back as a typed
/// [`gddr_store::StoreError`] whose `Display` and `kind_name` are
/// callable.
fn target_snapshot_decode(seed: u64, size: u64) -> Result<(), String> {
    use gddr_store::{FleetSnapshot, ShardSnapshot, StoreError, RECORD_HEADER_LEN};

    let mut rng = StdRng::seed_from_u64(seed);
    let hostile = |rng: &mut StdRng| -> String {
        const POOL: &[&str] = &[
            "cesnet",
            "eu\"west",
            "back\\slash",
            "multi\nline",
            "\u{1F980}-shard",
            "",
            "nul\u{0}byte",
        ];
        POOL[(rng.next_u64() as usize) % POOL.len()].to_string()
    };
    let state = |rng: &mut StdRng| -> Json {
        match rng.next_u64() % 4 {
            0 => Json::Null,
            1 => Json::obj([
                ("epoch", Json::Num((rng.next_u64() % 4096) as f64)),
                ("rung", Json::Str(hostile(rng))),
            ]),
            2 => Json::Arr(
                (0..rng.next_u64() % 5)
                    .map(|i| Json::Num(i as f64 * 0.5 - 1.0))
                    .collect(),
            ),
            _ => Json::obj([("nested", Json::obj([("deep", Json::Str(hostile(rng)))]))]),
        }
    };
    let shard_count = 1 + (size as usize % 8);
    let snap = FleetSnapshot {
        generation: 1 + rng.next_u64() % 1000,
        tick: rng.next_u64() % 100_000,
        shards: (0..shard_count)
            .map(|i| ShardSnapshot {
                shard: i as u64,
                // Names get an index suffix so by-name lookup stays
                // unambiguous even when the hostile pool repeats.
                name: format!("{}-{i}", hostile(&mut rng)),
                state: state(&mut rng),
            })
            .collect(),
    };

    // A valid snapshot round-trips to a byte-identical fixed point.
    let bytes = snap.to_record_bytes();
    let back = FleetSnapshot::from_record_bytes(&bytes)
        .map_err(|e| format!("valid snapshot rejected: {e} ({})", e.kind_name()))?;
    if back != snap {
        return fail("decoded snapshot disagrees with the original".to_string());
    }
    if back.to_record_bytes() != bytes {
        return fail("re-encoding the decoded snapshot is not byte-identical".to_string());
    }
    for shard in &snap.shards {
        if back.shard_named(&shard.name).map(|s| s.shard) != Some(shard.shard) {
            return fail(format!("shard {:?} lost in the round trip", shard.name));
        }
    }

    // Every corruption class must surface as a typed error (the
    // harness's catch_unwind turns any panic into a failure) whose
    // Display and kind_name render without panicking.
    let expect_err = |label: &str, data: &[u8]| -> Result<(), String> {
        match FleetSnapshot::from_record_bytes(data) {
            Err(e) => {
                let _ = e.to_string();
                let _ = e.kind_name();
                Ok(())
            }
            Ok(_) => Err(format!("{label}: corrupted record decoded cleanly")),
        }
    };
    let attacks = 2 + (size as usize % 6);
    for _ in 0..attacks {
        match rng.next_u64() % 5 {
            0 => {
                let cut = (rng.next_u64() as usize) % bytes.len();
                expect_err("truncation", &bytes[..cut])?;
            }
            1 => {
                let mut bad = bytes.clone();
                let byte = (rng.next_u64() as usize) % bad.len();
                bad[byte] ^= 1 << (rng.next_u64() % 8);
                expect_err("bit flip", &bad)?;
            }
            2 => {
                let mut bad = bytes.clone();
                bad.extend((0..1 + rng.next_u64() % 9).map(|i| i as u8));
                expect_err("trailing garbage", &bad)?;
            }
            3 => {
                let mut bad = bytes.clone();
                let header_byte = (rng.next_u64() as usize) % RECORD_HEADER_LEN;
                bad[header_byte] = bad[header_byte].wrapping_add(1 + (rng.next_u64() % 254) as u8);
                expect_err("header rewrite", &bad)?;
            }
            _ => {
                let junk: Vec<u8> = (0..rng.next_u64() % 64)
                    .map(|_| (rng.next_u64() & 0xFF) as u8)
                    .collect();
                // Random bytes never carry the magic tag, so decode
                // must refuse them.
                expect_err("random bytes", &junk)?;
            }
        }
    }

    // An intact frame around a non-snapshot payload is a Decode error,
    // not a panic and not a framing error.
    let framed = gddr_store::encode_record(b"{\"generation\":\"not a number\"}");
    match FleetSnapshot::from_record_bytes(&framed) {
        Err(StoreError::Decode(_)) => Ok(()),
        Err(e) => fail(format!(
            "wrong-shape payload gave {} instead of decode",
            e.kind_name()
        )),
        Ok(_) => fail("wrong-shape payload decoded cleanly".to_string()),
    }
}

/// The deliberately bad target: fails (via a typed error, not a panic)
/// whenever `size ≥ 3` on every seventh seed, so the harness's
/// catch/shrink/replay loop can be demonstrated end to end. The
/// shrinker must reduce any failing case to `size == 3`.
fn target_planted(seed: u64, size: u64) -> Result<(), String> {
    if size >= 3 && seed.is_multiple_of(7) {
        fail(format!("planted violation at seed {seed} size {size}"))
    } else {
        Ok(())
    }
}

/// Runs one case, converting panics in the code under test into
/// [`Outcome::Fail`] with `panicked = true`.
pub fn run_case(case: &FuzzCase) -> Outcome {
    let (seed, size) = (case.seed, case.size);
    let run = || -> Result<(), String> {
        match case.target.as_str() {
            "routing_valid" => target_routing_valid(seed, size),
            "routing_rejects_bad_weights" => target_routing_rejects_bad_weights(seed, size),
            "softmin_differential" => target_softmin_differential(seed, size),
            "lp_certificate" => target_lp_certificate(seed, size),
            "lp_differential" => target_lp_differential(seed, size),
            "demand_matrix" => target_demand_matrix(seed, size),
            "parse_topology_no_panic" => target_parse_topology_no_panic(seed, size),
            "parse_dot_no_panic" => target_parse_dot_no_panic(seed, size),
            "mutate_invariants" => target_mutate_invariants(seed, size),
            "gradcheck" => target_gradcheck(seed, size),
            "serve_request" => target_serve_request(seed, size),
            "telemetry_events" => target_telemetry_events(seed, size),
            "scenario_plan" => target_scenario_plan(seed, size),
            "snapshot_decode" => target_snapshot_decode(seed, size),
            "planted" => target_planted(seed, size),
            other => Err(format!("unknown fuzz target {other:?}")),
        }
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(message)) => Outcome::Fail {
            message,
            panicked: false,
        },
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Outcome::Fail {
                message: format!("panic: {message}"),
                panicked: true,
            }
        }
    }
}

/// Greedily shrinks a failing case over `size`, re-running candidates
/// and keeping the smallest one that still fails. Deterministic: the
/// seed never changes, so the shrunk case is the replayable minimal
/// counterexample.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;
        for candidate_size in [best.size / 2, best.size.saturating_sub(1)] {
            if candidate_size >= best.size {
                continue;
            }
            let candidate = FuzzCase {
                size: candidate_size,
                ..best.clone()
            };
            if run_case(&candidate).is_fail() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Summary of a budgeted sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Cases executed (may stop short of the full grid on budget).
    pub cases: usize,
    /// Cases skipped because the time budget ran out.
    pub skipped: usize,
    /// Every failure, unshrunk (callers shrink what they report).
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Runs `seeds` seeds of every target with sizes cycling up to
/// `max_size`, stopping early when `budget` is exhausted.
pub fn sweep(targets: &[&str], seeds: u64, max_size: u64, budget: Option<Duration>) -> SweepReport {
    let start = Instant::now();
    let max_size = max_size.max(1);
    let mut report = SweepReport {
        cases: 0,
        skipped: 0,
        failures: Vec::new(),
        elapsed: Duration::ZERO,
    };
    for seed in 0..seeds {
        for &target in targets {
            if budget.is_some_and(|b| start.elapsed() >= b) {
                report.skipped += 1;
                continue;
            }
            let case = FuzzCase {
                target: target.to_string(),
                seed,
                // Sizes cycle deterministically so every target sees
                // small and large instances across the seed range.
                size: 1 + (seed * 13 + 7) % max_size,
            };
            report.cases += 1;
            if let Outcome::Fail { message, panicked } = run_case(&case) {
                report.failures.push(FuzzFailure {
                    case,
                    message,
                    panicked,
                });
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_format_round_trips() {
        let case = FuzzCase {
            target: "lp_differential".to_string(),
            seed: 42,
            size: 9,
        };
        let text = case.to_replay_string();
        assert_eq!(FuzzCase::from_replay_string(&text).unwrap(), case);
        // Malformed replays are typed errors.
        assert!(FuzzCase::from_replay_string("{\"seed\": 1}").is_err());
        assert!(FuzzCase::from_replay_string("not json").is_err());
        assert!(FuzzCase::from_replay_string("{\"target\":\"x\",\"seed\":-1,\"size\":0}").is_err());
    }

    #[test]
    fn every_target_passes_a_quick_seed_grid() {
        for &target in ci_targets().iter() {
            for seed in 0..4u64 {
                let case = FuzzCase {
                    target: target.to_string(),
                    seed,
                    size: 1 + seed * 3,
                };
                let outcome = run_case(&case);
                assert_eq!(
                    outcome,
                    Outcome::Pass,
                    "target {target} seed {seed}: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn planted_failure_is_caught_and_shrunk_to_minimum() {
        let case = FuzzCase {
            target: "planted".to_string(),
            seed: 14, // 14 % 7 == 0 → fails for any size ≥ 3.
            size: 40,
        };
        assert!(run_case(&case).is_fail());
        let minimal = shrink(&case);
        assert_eq!(minimal.size, 3, "shrinker stopped early: {minimal:?}");
        assert_eq!(minimal.seed, 14);
        // The shrunk case still fails and survives a replay round-trip.
        assert!(run_case(&minimal).is_fail());
        let replayed = FuzzCase::from_replay_string(&minimal.to_replay_string()).unwrap();
        assert!(run_case(&replayed).is_fail());
    }

    #[test]
    fn unknown_targets_fail_gracefully() {
        let case = FuzzCase {
            target: "no_such_target".to_string(),
            seed: 0,
            size: 1,
        };
        match run_case(&case) {
            Outcome::Fail { message, panicked } => {
                assert!(!panicked);
                assert!(message.contains("unknown fuzz target"));
            }
            Outcome::Pass => panic!("unknown target passed"),
        }
    }

    #[test]
    fn sweep_honours_its_budget_and_reports_planted_failures() {
        let report = sweep(&["planted"], 15, 10, None);
        assert_eq!(report.cases, 15);
        // Seeds 0, 7 and 14 fail (size is always ≥ 3 here except when
        // the cycling size lands small — count whatever failed and
        // check they all replay).
        assert!(!report.failures.is_empty());
        for f in &report.failures {
            assert_eq!(f.case.seed % 7, 0);
            assert!(run_case(&f.case).is_fail());
        }
        // A zero budget runs nothing but counts the skips.
        let starved = sweep(&["planted"], 5, 10, Some(Duration::ZERO));
        assert_eq!(starved.cases, 0);
        assert_eq!(starved.skipped, 5);
    }
}
