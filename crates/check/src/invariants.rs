//! Invariant suites for the data plane: routing, pruned DAGs, graphs
//! after mutation, and the LP optimality bound.
//!
//! Each check returns a list of [`Violation`]s instead of panicking,
//! so the fuzzer can count, report and shrink failures.

use std::fmt;

use gddr_net::algo::{is_dag, is_strongly_connected};
use gddr_net::{Graph, NodeId};
use gddr_routing::prune::mask_is_usable;
use gddr_routing::Routing;

/// One failed invariant: which check tripped and a human-readable
/// description of the offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the invariant, e.g. `routing.simplex`.
    pub check: &'static str,
    /// What exactly was violated.
    pub detail: String,
}

impl Violation {
    pub fn new(check: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            check,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Routing invariants: splitting ratios form a simplex at every
/// transit node, destinations absorb their flow, and sizes match the
/// graph. Delegates to [`Routing::validate`] and wraps its typed
/// violations.
pub fn check_routing(graph: &Graph, routing: &Routing) -> Vec<Violation> {
    routing
        .validate(graph)
        .into_iter()
        .map(|v| Violation::new("routing.simplex", v.to_string()))
        .collect()
}

/// Pruned-subgraph invariants: the kept edge set is acyclic and usable
/// (source reaches sink, no dead ends that trap flow).
pub fn check_pruned_dag(
    graph: &Graph,
    source: NodeId,
    sink: NodeId,
    mask: &[bool],
) -> Vec<Violation> {
    let mut out = Vec::new();
    if mask.len() != graph.num_edges() {
        out.push(Violation::new(
            "prune.mask_size",
            format!(
                "mask covers {} edges but graph has {}",
                mask.len(),
                graph.num_edges()
            ),
        ));
        return out;
    }
    if !is_dag(graph, mask) {
        out.push(Violation::new(
            "prune.acyclic",
            format!("pruned subgraph for {} -> {} has a cycle", source.0, sink.0),
        ));
    }
    if !mask_is_usable(graph, source, sink, mask) {
        out.push(Violation::new(
            "prune.usable",
            format!(
                "pruned subgraph for {} -> {} is unusable (unreachable sink or dead end)",
                source.0, sink.0
            ),
        ));
    }
    out
}

/// Graph well-formedness, asserted after every `topology::mutate` op:
/// positive finite capacities, no self-loops, no parallel edges, and
/// strong connectivity (the mutation API's documented contract).
pub fn check_graph(graph: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    if graph.num_nodes() < 2 {
        out.push(Violation::new(
            "graph.size",
            format!("graph has {} nodes", graph.num_nodes()),
        ));
        return out;
    }
    let mut seen = std::collections::HashSet::new();
    for e in graph.edges() {
        let (s, t) = graph.endpoints(e);
        let cap = graph.capacity(e);
        if !(cap.is_finite() && cap > 0.0) {
            out.push(Violation::new(
                "graph.capacity",
                format!("edge {} -> {} has capacity {cap}", s.0, t.0),
            ));
        }
        if s == t {
            out.push(Violation::new(
                "graph.self_loop",
                format!("self-loop at node {}", s.0),
            ));
        }
        if !seen.insert((s, t)) {
            out.push(Violation::new(
                "graph.parallel_edge",
                format!("duplicate edge {} -> {}", s.0, t.0),
            ));
        }
    }
    if !is_strongly_connected(graph) {
        out.push(Violation::new(
            "graph.connectivity",
            "graph is not strongly connected".to_string(),
        ));
    }
    out
}

/// The optimality bound `U ≥ U_opt − ε`: no routing may beat the LP
/// oracle's optimum. `eps` absorbs simplex and simulation tolerances.
pub fn check_utilisation_bound(u_max: f64, u_opt: f64, eps: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    if !u_max.is_finite() || u_max < 0.0 {
        out.push(Violation::new(
            "routing.u_max_finite",
            format!("U_max = {u_max}"),
        ));
    } else if u_max < u_opt - eps {
        out.push(Violation::new(
            "routing.optimality_bound",
            format!("U_max = {u_max} beats the LP optimum {u_opt} by more than {eps}"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_routing::prune::{prune, PruneMode};
    use gddr_routing::softmin::{softmin_routing, SoftminConfig};

    #[test]
    fn healthy_pipeline_passes_every_suite() {
        let g = zoo::abilene();
        assert!(check_graph(&g).is_empty());
        let w = vec![1.0; g.num_edges()];
        let routing = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        assert!(check_routing(&g, &routing).is_empty());
        let mask = prune(&g, NodeId(0), NodeId(4), &w, PruneMode::DistanceDag);
        assert!(check_pruned_dag(&g, NodeId(0), NodeId(4), &mask).is_empty());
        assert!(check_utilisation_bound(0.8, 0.5, 1e-6).is_empty());
    }

    #[test]
    fn violations_are_reported_not_panicked() {
        let g = zoo::abilene();
        // A mask that keeps nothing is unusable.
        let mask = vec![false; g.num_edges()];
        let v = check_pruned_dag(&g, NodeId(0), NodeId(4), &mask);
        assert!(v.iter().any(|v| v.check == "prune.usable"));
        // A wrong-sized mask is its own violation.
        let v = check_pruned_dag(&g, NodeId(0), NodeId(4), &[true]);
        assert_eq!(v[0].check, "prune.mask_size");
        // Beating the oracle optimum is flagged.
        let v = check_utilisation_bound(0.3, 0.5, 1e-6);
        assert_eq!(v[0].check, "routing.optimality_bound");
        // Non-finite utilisation is flagged.
        let v = check_utilisation_bound(f64::NAN, 0.5, 1e-6);
        assert_eq!(v[0].check, "routing.u_max_finite");
        // Display includes the check name.
        assert!(v[0].to_string().starts_with("[routing.u_max_finite]"));
    }
}
