//! Autodiff gradient checks against central finite differences.
//!
//! For every parameter scalar the analytic gradient from
//! [`Tape::backward`] is compared to `(f(θ+ε) − f(θ−ε)) / 2ε` under
//! the relative-error metric `|a − n| / (1 + max(|a|, |n|))`, which is
//! absolute near zero and relative for large gradients. The whole nn
//! surface is covered: `Linear`, `Mlp` in its activation variants,
//! `LayerNorm`, and the full `GnBlock`.

use gddr_gnn::{GnBlock, GnBlockConfig, GraphStructure, GraphVars};
use gddr_nn::layers::{Activation, LayerNorm, Linear, Mlp};
use gddr_nn::{Matrix, ParamStore, Tape, Var};
use gddr_rng::rngs::StdRng;
use gddr_rng::{Rng, SeedableRng};

/// Perturbation step for central differences.
pub const FD_EPS: f64 = 1e-6;

/// Acceptance threshold on the worst relative error.
pub const GRAD_TOL: f64 = 1e-4;

/// Outcome of one gradient check.
#[derive(Debug, Clone)]
pub struct GradReport {
    /// Worst relative error over every parameter scalar.
    pub max_rel_err: f64,
    /// `param_name[r,c]` of the worst entry.
    pub worst: String,
    /// Number of scalars compared.
    pub checks: usize,
}

impl GradReport {
    /// Whether the check passed under [`GRAD_TOL`].
    pub fn ok(&self) -> bool {
        self.max_rel_err.is_finite() && self.max_rel_err < GRAD_TOL
    }

    fn merge(self, other: GradReport) -> GradReport {
        if other.max_rel_err > self.max_rel_err || !other.max_rel_err.is_finite() {
            GradReport {
                checks: self.checks + other.checks,
                ..other
            }
        } else {
            GradReport {
                checks: self.checks + other.checks,
                ..self
            }
        }
    }
}

/// Checks every parameter in `store` against central finite
/// differences of the scalar loss built by `build`.
///
/// `build` must construct the loss freshly from the store each call
/// (it is re-invoked per perturbation) and return a 1×1 [`Var`].
pub fn check_gradients(
    store: &mut ParamStore,
    build: impl Fn(&mut Tape, &ParamStore) -> Var,
) -> GradReport {
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    store.zero_grads();
    tape.backward(loss, store);

    let params: Vec<_> = store
        .iter()
        .map(|(id, name, value)| (id, name.to_string(), value.shape()))
        .collect();
    let mut report = GradReport {
        max_rel_err: 0.0,
        worst: String::new(),
        checks: 0,
    };
    for (id, name, (rows, cols)) in params {
        for r in 0..rows {
            for c in 0..cols {
                let analytic = store.grad(id).get(r, c);
                let orig = store.value(id).get(r, c);
                store.value_mut(id).set(r, c, orig + FD_EPS);
                let mut t1 = Tape::new();
                let l1 = build(&mut t1, store);
                let f1 = t1.value(l1).get(0, 0);
                store.value_mut(id).set(r, c, orig - FD_EPS);
                let mut t2 = Tape::new();
                let l2 = build(&mut t2, store);
                let f2 = t2.value(l2).get(0, 0);
                store.value_mut(id).set(r, c, orig);
                let numeric = (f1 - f2) / (2.0 * FD_EPS);
                let rel = (analytic - numeric).abs() / (1.0 + analytic.abs().max(numeric.abs()));
                report.checks += 1;
                if !rel.is_finite() || rel > report.max_rel_err {
                    report.max_rel_err = rel;
                    report.worst = format!("{name}[{r},{c}]");
                }
            }
        }
    }
    report
}

fn random_input(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Sum of squares over a variable — a loss that exercises every output.
fn square_sum(tape: &mut Tape, x: Var) -> Var {
    let sq = tape.mul(x, x);
    tape.sum_all(sq)
}

/// Gradient check for a [`Linear`] layer.
pub fn check_linear(seed: u64) -> GradReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let x = store.register("x", random_input(3, 4, &mut rng));
    let layer = Linear::new(&mut store, "lin", 4, 2, &mut rng);
    check_gradients(&mut store, |tape, store| {
        let xv = tape.param(store, x);
        let y = layer.forward(tape, store, xv);
        square_sum(tape, y)
    })
}

/// Gradient check for an [`Mlp`] with the given activations.
pub fn check_mlp(seed: u64, activation: Activation, output_activation: Activation) -> GradReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let x = store.register("x", random_input(2, 3, &mut rng));
    let mlp = Mlp::with_output_activation(
        &mut store,
        "mlp",
        &[3, 5, 2],
        activation,
        output_activation,
        &mut rng,
    );
    check_gradients(&mut store, |tape, store| {
        let xv = tape.param(store, x);
        let y = mlp.forward(tape, store, xv);
        square_sum(tape, y)
    })
}

/// Gradient check for [`LayerNorm`].
pub fn check_layer_norm(seed: u64) -> GradReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let x = store.register("x", random_input(2, 4, &mut rng));
    let ln = LayerNorm::new(&mut store, "ln", 4);
    check_gradients(&mut store, |tape, store| {
        let xv = tape.param(store, x);
        let y = ln.forward(tape, store, xv);
        square_sum(tape, y)
    })
}

/// Gradient check for a full [`GnBlock`] on a 3-node triangle graph,
/// with node/edge/global features all treated as parameters so the
/// message-passing path is differentiated end to end.
pub fn check_gn_block(seed: u64) -> GradReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let structure = GraphStructure {
        num_nodes: 3,
        num_edges: 3,
        senders: vec![0, 1, 2],
        receivers: vec![1, 2, 0],
    };
    let config = GnBlockConfig {
        edge_in: 2,
        node_in: 2,
        global_in: 1,
        edge_out: 2,
        node_out: 2,
        global_out: 1,
        hidden: 4,
    };
    let mut store = ParamStore::new();
    let nodes = store.register("feat.nodes", random_input(3, 2, &mut rng));
    let edges = store.register("feat.edges", random_input(3, 2, &mut rng));
    let globals = store.register("feat.globals", random_input(1, 1, &mut rng));
    let block = GnBlock::new(&mut store, "gn", &config, &mut rng);
    check_gradients(&mut store, |tape, store| {
        let input = GraphVars {
            nodes: tape.param(store, nodes),
            edges: tape.param(store, edges),
            globals: tape.param(store, globals),
        };
        let out = block.forward(tape, store, &structure, input);
        let ln = square_sum(tape, out.nodes);
        let le = square_sum(tape, out.edges);
        let lg = square_sum(tape, out.globals);
        let s = tape.add(ln, le);
        tape.add(s, lg)
    })
}

/// Runs every layer and block check for one seed, returning the
/// merged report (worst error wins).
pub fn check_all(seed: u64) -> GradReport {
    let mut report = check_linear(seed);
    for (act, out_act) in [
        (Activation::Relu, Activation::Linear),
        (Activation::Tanh, Activation::Linear),
        (Activation::Tanh, Activation::Tanh),
    ] {
        report = report.merge(check_mlp(seed, act, out_act));
    }
    report = report.merge(check_layer_norm(seed));
    report.merge(check_gn_block(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_and_block_matches_finite_differences() {
        for seed in 0..3u64 {
            let report = check_all(seed);
            assert!(
                report.ok(),
                "seed {seed}: max rel err {} at {} over {} checks",
                report.max_rel_err,
                report.worst,
                report.checks
            );
            assert!(report.checks > 100, "too few scalars: {}", report.checks);
        }
    }

    #[test]
    fn detects_a_broken_gradient() {
        // A loss whose build is deliberately inconsistent with what
        // backward saw (an extra scale applied on rebuild) must fail.
        let mut store = ParamStore::new();
        let x = store.register("x", Matrix::from_vec(1, 2, vec![0.3, -0.7]));
        let first = std::cell::Cell::new(true);
        let report = check_gradients(&mut store, |tape, store| {
            let xv = tape.param(store, x);
            let y = if first.replace(false) {
                xv
            } else {
                tape.scale(xv, 2.0)
            };
            square_sum(tape, y)
        });
        assert!(!report.ok(), "inconsistent loss passed: {report:?}");
    }
}
