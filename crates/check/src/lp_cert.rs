//! Optimality certificates for simplex solutions.
//!
//! A [`Solution`] is not trusted on the solver's say-so: given the
//! original [`LinearProgram`] (`min cᵀx, x ≥ 0`) and the reported
//! primal/dual pair, this module re-derives optimality from first
//! principles — primal feasibility, dual feasibility (sign conventions
//! and non-negative reduced costs), complementary slackness, and a
//! duality gap within tolerance. Together these imply the reported
//! basis is consistent without ever inspecting the tableau.

use gddr_lp::{LinearProgram, Relation, Solution};

use crate::invariants::Violation;

/// Default certificate tolerance. Scaled by problem magnitude where
/// appropriate (see the per-check comments).
pub const DEFAULT_TOL: f64 = 1e-6;

/// Verifies the full optimality certificate of `sol` for `lp`.
///
/// Checks, each contributing violations independently:
/// 1. `x ≥ 0` and every constraint row satisfied (primal feasibility),
/// 2. dual signs: `y ≤ 0` on `≤` rows, `y ≥ 0` on `≥` rows, free on
///    `=` rows,
/// 3. reduced costs `c − Aᵀy ≥ 0` (dual feasibility),
/// 4. complementary slackness: `y_i · (a_iᵀx − b_i) ≈ 0`,
/// 5. duality gap `|cᵀx − bᵀy| ≤ tol · (1 + |cᵀx|)` and agreement of
///    `sol.objective` with `cᵀx`.
pub fn check_certificate(lp: &LinearProgram, sol: &Solution, tol: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = lp.num_vars();
    let c = lp.objective();
    if sol.x.len() != n {
        out.push(Violation::new(
            "lp.shape",
            format!("solution has {} vars, program {}", sol.x.len(), n),
        ));
        return out;
    }
    if sol.duals.len() != lp.num_constraints() {
        out.push(Violation::new(
            "lp.shape",
            format!(
                "solution has {} duals, program {} constraints",
                sol.duals.len(),
                lp.num_constraints()
            ),
        ));
        return out;
    }
    for (j, &v) in sol.x.iter().enumerate() {
        if !v.is_finite() {
            out.push(Violation::new("lp.primal_finite", format!("x{j} = {v}")));
        } else if v < -tol {
            out.push(Violation::new("lp.primal_nonneg", format!("x{j} = {v}")));
        }
    }
    if !out.is_empty() {
        return out;
    }

    let cx: f64 = c.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
    if (cx - sol.objective).abs() > tol * (1.0 + cx.abs()) {
        out.push(Violation::new(
            "lp.objective_agrees",
            format!("cᵀx = {cx} but solution reports {}", sol.objective),
        ));
    }

    let mut by = 0.0;
    let mut at_y = vec![0.0; n];
    for (r, (terms, rel, rhs)) in lp.constraints().enumerate() {
        let lhs: f64 = terms.iter().map(|&(v, coeff)| coeff * sol.x[v]).sum();
        // Tolerance scaled by row magnitude so large-capacity MCF rows
        // are not penalised for honest floating-point error.
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        match rel {
            Relation::Le if lhs > rhs + tol * scale => {
                out.push(Violation::new(
                    "lp.primal_feasible",
                    format!("row {r}: {lhs} > {rhs}"),
                ));
            }
            Relation::Ge if lhs < rhs - tol * scale => {
                out.push(Violation::new(
                    "lp.primal_feasible",
                    format!("row {r}: {lhs} < {rhs}"),
                ));
            }
            Relation::Eq if (lhs - rhs).abs() > tol * scale => {
                out.push(Violation::new(
                    "lp.primal_feasible",
                    format!("row {r}: {lhs} != {rhs}"),
                ));
            }
            _ => {}
        }
        let y = sol.duals[r];
        if !y.is_finite() {
            out.push(Violation::new("lp.dual_finite", format!("y{r} = {y}")));
            continue;
        }
        match rel {
            Relation::Le if y > tol => {
                out.push(Violation::new(
                    "lp.dual_sign",
                    format!("row {r} is ≤ but y{r} = {y} > 0"),
                ));
            }
            Relation::Ge if y < -tol => {
                out.push(Violation::new(
                    "lp.dual_sign",
                    format!("row {r} is ≥ but y{r} = {y} < 0"),
                ));
            }
            _ => {}
        }
        // Complementary slackness: an inactive row must carry no dual.
        let slack = lhs - rhs;
        if y.abs() * slack.abs() > tol * scale * (1.0 + y.abs()) {
            out.push(Violation::new(
                "lp.complementary_slackness",
                format!("row {r}: y = {y} with slack {slack}"),
            ));
        }
        by += y * rhs;
        for &(v, coeff) in terms {
            at_y[v] += coeff * y;
        }
    }

    // Dual feasibility: reduced costs must be non-negative for the
    // minimisation dual; and slack variables with positive value must
    // have zero reduced cost (covered by complementary slackness).
    for j in 0..n {
        let reduced = c[j] - at_y[j];
        let scale = 1.0 + c[j].abs().max(at_y[j].abs());
        if reduced < -tol * scale {
            out.push(Violation::new(
                "lp.reduced_cost",
                format!("x{j}: c − Aᵀy = {reduced} < 0"),
            ));
        }
        // Complementary slackness on variables: x_j > 0 ⇒ reduced = 0.
        if sol.x[j] > tol && reduced.abs() > tol * scale * (1.0 + sol.x[j]) {
            out.push(Violation::new(
                "lp.complementary_slackness",
                format!("x{j} = {} with reduced cost {reduced}", sol.x[j]),
            ));
        }
    }

    if (cx - by).abs() > tol * (1.0 + cx.abs()) {
        out.push(Violation::new(
            "lp.duality_gap",
            format!("cᵀx = {cx} vs bᵀy = {by}"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_lp::simplex::solve;

    fn classic() -> LinearProgram {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[-3.0, -5.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        lp
    }

    #[test]
    fn certifies_a_correct_solution() {
        let lp = classic();
        let sol = solve(&lp).unwrap();
        assert_eq!(check_certificate(&lp, &sol, DEFAULT_TOL), Vec::new());
    }

    #[test]
    fn rejects_a_tampered_solution() {
        let lp = classic();
        let mut sol = solve(&lp).unwrap();
        // Claim a better objective than the optimum: the gap check and
        // objective-agreement check must both notice.
        sol.objective -= 1.0;
        let v = check_certificate(&lp, &sol, DEFAULT_TOL);
        assert!(v.iter().any(|v| v.check == "lp.objective_agrees"));

        // An infeasible primal point.
        let mut sol = solve(&lp).unwrap();
        sol.x[0] = 100.0;
        let v = check_certificate(&lp, &sol, DEFAULT_TOL);
        assert!(v.iter().any(|v| v.check == "lp.primal_feasible"));

        // A dual with the wrong sign.
        let mut sol = solve(&lp).unwrap();
        sol.duals[1] = 1.0;
        let v = check_certificate(&lp, &sol, DEFAULT_TOL);
        assert!(v.iter().any(|v| v.check == "lp.dual_sign"));

        // A non-finite dual.
        let mut sol = solve(&lp).unwrap();
        sol.duals[0] = f64::NAN;
        let v = check_certificate(&lp, &sol, DEFAULT_TOL);
        assert!(v.iter().any(|v| v.check == "lp.dual_finite"));
    }

    #[test]
    fn certifies_mixed_relation_programs() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[1.0, 2.0]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 10.0);
        lp.add_constraint(&[(0, 1.0), (1, -1.0)], Relation::Ge, 2.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 9.0);
        let sol = solve(&lp).unwrap();
        assert_eq!(check_certificate(&lp, &sol, DEFAULT_TOL), Vec::new());
    }
}
