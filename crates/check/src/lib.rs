//! Pipeline-wide invariant checking, a deterministic structured
//! fuzzer, and differential tests for the GDDR reproduction.
//!
//! Every PPO reward flows through the softmin translation, the MCF
//! simplex oracle and the autodiff tape; a silent invariant violation
//! in any of them corrupts training long before downstream quarantines
//! notice. This crate makes those invariants executable:
//!
//! - [`invariants`] — routing simplex/conservation/acyclicity checks,
//!   graph well-formedness after `topology::mutate` ops, and the
//!   `U ≥ U_opt − ε` optimality bound.
//! - [`lp_cert`] — primal/dual feasibility, complementary slackness
//!   and duality-gap certificates for simplex solutions.
//! - [`gradcheck`] — autodiff gradients vs central finite differences
//!   for every nn layer and the GNN block.
//! - [`diff`] — differential references: brute-force vertex
//!   enumeration vs the two-phase simplex, and exhaustive
//!   path-enumeration routing vs the flow simulator.
//! - [`fuzz`] — a deterministic structured fuzzer on `gddr-rng` with
//!   shrinking and a seed-replay file format; every failure is one
//!   `fuzz_harness --replay` command to reproduce.
//!
//! Everything here is hermetic: std plus sibling `gddr-*` crates only.

pub mod diff;
pub mod fuzz;
pub mod gradcheck;
pub mod invariants;
pub mod lp_cert;

pub use fuzz::{FuzzCase, FuzzFailure, Outcome, SweepReport};
pub use invariants::Violation;
