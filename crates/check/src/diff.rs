//! Differential references: independent, obviously-correct (and
//! obviously-slow) reimplementations the production code is checked
//! against on small instances.
//!
//! - [`brute_force_lp`] solves `min cᵀx, x ≥ 0` by enumerating basic
//!   points (every n-subset of active constraints) — exponential, but
//!   exact on the tiny programs the fuzzer generates.
//! - [`path_enumeration_loads`] routes one unit of demand by
//!   exhaustively enumerating paths through the splitting ratios, the
//!   textbook semantics the flow simulator must agree with.

use gddr_lp::{LinearProgram, Relation};
use gddr_net::Graph;
use gddr_routing::Routing;

const EPS: f64 = 1e-7;

/// Solves a small dense linear system `M z = rhs` in place by Gaussian
/// elimination with partial pivoting. Returns `None` if singular.
fn solve_dense(mut m: Vec<Vec<f64>>, mut rhs: Vec<f64>) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &b| {
            m[a][col]
                .abs()
                .partial_cmp(&m[b][col].abs())
                .expect("finite pivots")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        let pivot_row = m[col].clone();
        let pivot_rhs = rhs[col];
        for row in 0..n {
            if row != col {
                let f = m[row][col] / pivot_row[col];
                if f != 0.0 {
                    for (mk, pk) in m[row].iter_mut().zip(&pivot_row).skip(col) {
                        *mk -= f * pk;
                    }
                    rhs[row] -= f * pivot_rhs;
                }
            }
        }
    }
    Some((0..n).map(|i| rhs[i] / m[i][i]).collect())
}

/// Reference LP solver by vertex enumeration.
///
/// Treats every constraint row and every non-negativity bound as a
/// candidate active hyperplane, solves each n-subset, keeps feasible
/// points, and returns the best `(objective, x)`. `None` means no
/// feasible basic point exists — for programs whose feasible region is
/// bounded (the fuzzer always adds box rows) that is exactly
/// infeasibility.
///
/// Cost is `C(m + n, n)` dense solves: only use with a handful of
/// variables.
pub fn brute_force_lp(lp: &LinearProgram) -> Option<(f64, Vec<f64>)> {
    let n = lp.num_vars();
    let c = lp.objective();
    // Candidate hyperplanes: constraint rows as equalities, then the
    // bounds x_j = 0.
    let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
    for (terms, _, rhs) in lp.constraints() {
        let mut row = vec![0.0; n];
        for &(v, coeff) in terms {
            row[v] += coeff;
        }
        planes.push((row, rhs));
    }
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        planes.push((row, 0.0));
    }

    let feasible = |x: &[f64]| -> bool {
        if x.iter().any(|v| !v.is_finite() || *v < -EPS) {
            return false;
        }
        lp.constraints().all(|(terms, rel, rhs)| {
            let lhs: f64 = terms.iter().map(|&(v, coeff)| coeff * x[v]).sum();
            let tol = EPS * (1.0 + lhs.abs().max(rhs.abs()));
            match rel {
                Relation::Le => lhs <= rhs + tol,
                Relation::Ge => lhs >= rhs - tol,
                Relation::Eq => (lhs - rhs).abs() <= tol,
            }
        })
    };

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut subset: Vec<usize> = (0..n).collect();
    if planes.len() < n {
        return None;
    }
    loop {
        let m: Vec<Vec<f64>> = subset.iter().map(|&i| planes[i].0.clone()).collect();
        let rhs: Vec<f64> = subset.iter().map(|&i| planes[i].1).collect();
        if let Some(x) = solve_dense(m, rhs) {
            if feasible(&x) {
                let obj: f64 = c.iter().zip(&x).map(|(c, v)| c * v).sum();
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, x));
                }
            }
        }
        // Advance the combination (lexicographic n-subsets of planes).
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if subset[i] + (n - i) < planes.len() {
                subset[i] += 1;
                for k in i + 1..n {
                    subset[k] = subset[k - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Routes one unit of `s → t` demand by exhaustive path enumeration
/// through `routing`'s splitting ratios, returning per-edge loads.
///
/// Each path's flow is the product of the ratio taken at every hop.
/// Returns `None` if the ratio subgraph is cyclic or the enumeration
/// exceeds `max_paths` (the caller should only hand in tiny DAG
/// routings).
pub fn path_enumeration_loads(
    graph: &Graph,
    routing: &Routing,
    s: usize,
    t: usize,
    max_paths: usize,
) -> Option<Vec<f64>> {
    let ratios = routing.flow(s, t)?;
    let mut loads = vec![0.0; graph.num_edges()];
    let mut paths = 0usize;
    // Depth-first enumeration carrying the product of ratios so far.
    // `on_path` guards against cycles: a revisit means the ratio
    // subgraph is not a DAG and the reference refuses to answer.
    let mut on_path = vec![false; graph.num_nodes()];
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        graph: &Graph,
        ratios: &[f64],
        v: usize,
        t: usize,
        flow: f64,
        loads: &mut [f64],
        on_path: &mut [bool],
        paths: &mut usize,
        max_paths: usize,
    ) -> bool {
        if v == t {
            *paths += 1;
            return *paths <= max_paths;
        }
        if on_path[v] {
            return false; // Cycle in the ratio subgraph.
        }
        on_path[v] = true;
        for &e in graph.out_edges(gddr_net::NodeId(v)) {
            let r = ratios[e.0];
            if r > 1e-12 {
                loads[e.0] += flow * r;
                if !dfs(
                    graph,
                    ratios,
                    graph.dst(e).0,
                    t,
                    flow * r,
                    loads,
                    on_path,
                    paths,
                    max_paths,
                ) {
                    return false;
                }
            }
        }
        on_path[v] = false;
        true
    }
    if dfs(
        graph,
        ratios,
        s,
        t,
        1.0,
        &mut loads,
        &mut on_path,
        &mut paths,
        max_paths,
    ) {
        Some(loads)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_lp::simplex::solve;
    use gddr_net::topology::zoo;
    use gddr_routing::sim::max_link_utilisation;
    use gddr_routing::softmin::{softmin_routing, SoftminConfig};
    use gddr_traffic::DemandMatrix;

    #[test]
    fn brute_force_agrees_with_simplex_on_the_classic() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[-3.0, -5.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let (obj, x) = brute_force_lp(&lp).unwrap();
        let sol = solve(&lp).unwrap();
        assert!((obj - sol.objective).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn brute_force_detects_infeasibility() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Relation::Ge, 2.0);
        assert!(brute_force_lp(&lp).is_none());
    }

    #[test]
    fn path_enumeration_matches_the_simulator() {
        let g = zoo::abilene();
        let w = vec![1.0; g.num_edges()];
        let routing = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let (s, t) = (0, 7);
        let mut dm = DemandMatrix::zeros(g.num_nodes());
        dm.set(s, t, 1.0);
        let report = max_link_utilisation(&g, &routing, &dm).unwrap();
        let loads = path_enumeration_loads(&g, &routing, s, t, 1_000_000).unwrap();
        for (e, (path_load, sim_load)) in loads.iter().zip(&report.loads).enumerate() {
            assert!(
                (path_load - sim_load).abs() < 1e-9,
                "edge {e}: paths say {path_load} sim says {sim_load}"
            );
        }
    }
}
