//! Softmin routing: the paper's translation from learned edge weights
//! to a full routing strategy (Alg. 2, Eq. 3).
//!
//! For each flow `(s, t)`:
//!
//! 1. prune the weighted graph to a DAG for the flow ([`crate::prune`]),
//! 2. compute every vertex's distance to the sink on the pruned graph,
//! 3. at each vertex, score every retained out-edge by
//!    `w(edge) + d(neighbour)` and convert the scores into splitting
//!    ratios with the softmin function
//!    `softmin(x)_i = exp(-γ·x_i) / Σ_j exp(-γ·x_j)`.
//!
//! The temperature `γ` controls how aggressively traffic concentrates
//! on the shortest alternatives (γ → ∞ approaches shortest-path
//! routing; γ → 0 approaches uniform splitting over the DAG).

use std::fmt;

use gddr_net::{Graph, NodeId};

use crate::prune::{prune, PruneMode};
use crate::routing::Routing;

/// Typed rejection of bad inputs at the routing boundary.
///
/// The softmin translation sits between the learned policy and the
/// simulator: a NaN or negative weight here would silently become a NaN
/// splitting ratio and corrupt every downstream reward. All input
/// validation is therefore checked (not asserted) so callers — and the
/// fuzz harness — can rely on "typed error or valid routing, never a
/// panic".
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// `weights` does not provide exactly one weight per edge.
    WeightCountMismatch {
        /// Edges in the graph.
        expected: usize,
        /// Weights supplied.
        got: usize,
    },
    /// A weight was NaN, infinite, zero or negative (softmin distances
    /// need positive finite lengths).
    InvalidWeight {
        /// Dense edge index of the offending weight.
        edge: usize,
        /// The offending value.
        value: f64,
    },
    /// The softmin temperature γ was negative or non-finite.
    InvalidGamma {
        /// The offending value.
        gamma: f64,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::WeightCountMismatch { expected, got } => {
                write!(f, "expected {expected} edge weights, got {got}")
            }
            RoutingError::InvalidWeight { edge, value } => {
                write!(
                    f,
                    "weight {value} on edge {edge} is not positive and finite"
                )
            }
            RoutingError::InvalidGamma { gamma } => {
                write!(f, "softmin temperature {gamma} is not finite and >= 0")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Configuration for [`softmin_routing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftminConfig {
    /// Softmin temperature γ (paper Eq. 3). The paper's experiments use
    /// values around 2; the iterative GNN policy learns γ itself.
    pub gamma: f64,
    /// DAG-conversion algorithm.
    pub prune_mode: PruneMode,
}

impl Default for SoftminConfig {
    fn default() -> Self {
        SoftminConfig {
            gamma: 2.0,
            prune_mode: PruneMode::DistanceDag,
        }
    }
}

/// The softmin function (paper Eq. 3), numerically stabilised by
/// shifting by the minimum score.
///
/// # Panics
///
/// Panics if `xs` is empty or `gamma` is negative/non-finite.
pub fn softmin(xs: &[f64], gamma: f64) -> Vec<f64> {
    assert!(!xs.is_empty(), "softmin of an empty slice");
    assert!(gamma.is_finite() && gamma >= 0.0, "gamma must be >= 0");
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let exps: Vec<f64> = xs.iter().map(|&x| (-gamma * (x - min)).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Distance of every node to `sink` over the masked subgraph
/// (Dijkstra on reversed masked edges).
fn masked_dist_to_sink(graph: &Graph, sink: NodeId, weights: &[f64], mask: &[bool]) -> Vec<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist = vec![f64::INFINITY; graph.num_nodes()];
    let mut heap = BinaryHeap::new();
    dist[sink.0] = 0.0;
    heap.push(Entry(0.0, sink.0));
    while let Some(Entry(d, v)) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &e in graph.in_edges(NodeId(v)) {
            if !mask[e.0] {
                continue;
            }
            let u = graph.src(e).0;
            let nd = d + weights[e.0];
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Entry(nd, u));
            }
        }
    }
    dist
}

/// Splitting ratios for a single destination on an already-pruned DAG.
fn destination_ratios(
    graph: &Graph,
    sink: NodeId,
    weights: &[f64],
    mask: &[bool],
    gamma: f64,
) -> Vec<f64> {
    let d = masked_dist_to_sink(graph, sink, weights, mask);
    let mut ratios = vec![0.0; graph.num_edges()];
    for v in graph.nodes() {
        if v == sink {
            continue;
        }
        let out: Vec<_> = graph
            .out_edges(v)
            .iter()
            .copied()
            .filter(|&e| mask[e.0] && d[graph.dst(e).0].is_finite())
            .collect();
        if out.is_empty() {
            continue;
        }
        let scores: Vec<f64> = out
            .iter()
            .map(|&e| weights[e.0] + d[graph.dst(e).0])
            .collect();
        for (e, r) in out.iter().zip(softmin(&scores, gamma)) {
            ratios[e.0] = r;
        }
    }
    ratios
}

/// Derives a complete routing strategy from edge weights (paper
/// Alg. 2).
///
/// With [`PruneMode::DistanceDag`] the pruning depends only on the
/// destination, so the per-destination ratios are computed once and
/// shared by all sources; with [`PruneMode::FrontierMeets`] each flow
/// gets its own pruning, as in the paper's pseudocode.
///
/// # Errors
///
/// Returns a [`RoutingError`] if `weights` does not cover every edge,
/// contains a non-finite or non-positive value, or the configured γ is
/// invalid. Bad inputs are rejected up front so no NaN can reach the
/// splitting ratios.
pub fn softmin_routing(
    graph: &Graph,
    weights: &[f64],
    config: &SoftminConfig,
) -> Result<Routing, RoutingError> {
    let _span = gddr_telemetry::span("routing.softmin");
    if weights.len() != graph.num_edges() {
        return Err(RoutingError::WeightCountMismatch {
            expected: graph.num_edges(),
            got: weights.len(),
        });
    }
    if let Some((edge, &value)) = weights
        .iter()
        .enumerate()
        .find(|(_, &w)| !w.is_finite() || w <= 0.0)
    {
        return Err(RoutingError::InvalidWeight { edge, value });
    }
    if !config.gamma.is_finite() || config.gamma < 0.0 {
        return Err(RoutingError::InvalidGamma {
            gamma: config.gamma,
        });
    }
    let n = graph.num_nodes();
    let mut routing = Routing::new(n, graph.num_edges());
    match config.prune_mode {
        PruneMode::DistanceDag => {
            for t in 0..n {
                let mask = prune(graph, NodeId(0), NodeId(t), weights, config.prune_mode);
                let ratios = destination_ratios(graph, NodeId(t), weights, &mask, config.gamma);
                routing.set_dest_flow(t, ratios);
            }
        }
        PruneMode::FrontierMeets => {
            for s in 0..n {
                for t in 0..n {
                    if s == t {
                        continue;
                    }
                    let mask = prune(graph, NodeId(s), NodeId(t), weights, config.prune_mode);
                    let ratios = destination_ratios(graph, NodeId(t), weights, &mask, config.gamma);
                    routing.set_flow(s, t, ratios);
                }
            }
        }
    }
    Ok(routing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::{from_links, zoo};

    #[test]
    fn softmin_is_a_distribution() {
        let r = softmin(&[1.0, 2.0, 3.0], 2.0);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(r[0] > r[1] && r[1] > r[2], "smaller score gets more");
    }

    #[test]
    fn softmin_gamma_zero_is_uniform() {
        let r = softmin(&[1.0, 5.0, 9.0], 0.0);
        for x in r {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmin_large_gamma_is_argmin() {
        let r = softmin(&[1.0, 2.0], 100.0);
        assert!(r[0] > 0.999);
    }

    #[test]
    fn softmin_is_shift_invariant_and_stable() {
        let a = softmin(&[1.0, 2.0], 3.0);
        let b = softmin(&[1001.0, 1002.0], 3.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        let c = softmin(&[1e6, 2e6], 5.0);
        assert!(c.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn routing_is_valid_on_zoo_graphs() {
        for g in [zoo::cesnet(), zoo::abilene()] {
            let w = vec![1.0; g.num_edges()];
            let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
            let violations = r.validate(&g);
            assert!(violations.is_empty(), "{}: {:?}", g.name(), violations);
            assert_eq!(r.num_flows(), g.num_nodes() * (g.num_nodes() - 1));
        }
    }

    #[test]
    fn frontier_meets_mode_is_valid() {
        let g = zoo::cesnet();
        let w = vec![1.0; g.num_edges()];
        let cfg = SoftminConfig {
            prune_mode: crate::prune::PruneMode::FrontierMeets,
            ..Default::default()
        };
        let r = softmin_routing(&g, &w, &cfg).unwrap();
        assert!(r.validate(&g).is_empty());
    }

    #[test]
    fn diamond_splits_between_equal_paths() {
        let g = from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0);
        let w = vec![1.0; g.num_edges()];
        let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let ratios = r.flow(0, 3).unwrap();
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert!((ratios[e01.0] - 0.5).abs() < 1e-9);
        assert!((ratios[e02.0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_split() {
        let g = from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0);
        let mut w = vec![1.0; g.num_edges()];
        // Make the path through node 1 cheaper.
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        w[e01.0] = 0.5;
        let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let ratios = r.flow(0, 3).unwrap();
        let e02 = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert!(ratios[e01.0] > ratios[e02.0]);
    }

    #[test]
    fn rejects_zero_weights_with_typed_error() {
        let g = zoo::cesnet();
        let w = vec![0.0; g.num_edges()];
        let err = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap_err();
        assert_eq!(
            err,
            RoutingError::InvalidWeight {
                edge: 0,
                value: 0.0
            }
        );
    }

    #[test]
    fn rejects_nonfinite_weights_with_typed_error() {
        let g = zoo::cesnet();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let mut w = vec![1.0; g.num_edges()];
            w[3] = bad;
            match softmin_routing(&g, &w, &SoftminConfig::default()) {
                Err(RoutingError::InvalidWeight { edge: 3, .. }) => {}
                other => panic!("expected InvalidWeight, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_weight_count_mismatch() {
        let g = zoo::cesnet();
        let w = vec![1.0; g.num_edges() - 1];
        assert_eq!(
            softmin_routing(&g, &w, &SoftminConfig::default()).unwrap_err(),
            RoutingError::WeightCountMismatch {
                expected: g.num_edges(),
                got: g.num_edges() - 1,
            }
        );
    }

    #[test]
    fn rejects_invalid_gamma() {
        let g = zoo::cesnet();
        let w = vec![1.0; g.num_edges()];
        for gamma in [f64::NAN, f64::INFINITY, -0.5] {
            let cfg = SoftminConfig {
                gamma,
                ..Default::default()
            };
            assert!(matches!(
                softmin_routing(&g, &w, &cfg),
                Err(RoutingError::InvalidGamma { .. })
            ));
        }
    }
}
