//! # gddr-routing
//!
//! The routing layer of the GDDR reproduction:
//!
//! - [`routing`]: the splitting-ratio routing representation of the
//!   paper's §IV-A (`R_{v,(s,t)}: Γ(v) → [0,1]`) and its validity
//!   constraints,
//! - [`prune`]: conversion of a weighted graph into a per-flow DAG that
//!   retains multipath (paper Alg. 3 and the distance-filter variant
//!   used as the default — see DESIGN.md),
//! - [`softmin`]: the modified softmin routing translation (paper
//!   Alg. 2 / Eq. 3) mapping learned edge weights to a full routing
//!   strategy,
//! - [`sim`]: flow propagation computing per-link loads, utilisations
//!   and `U_max` for a routing and demand matrix (Eq. 1),
//! - [`baselines`]: shortest-path and ECMP routing, plus an
//!   inverse-capacity oblivious heuristic,
//! - [`analysis`]: path-length and stretch metrics quantifying the
//!   latency cost of load-balanced routings (§VI discussion).
//!
//! # Example
//!
//! ```
//! use gddr_net::topology::zoo;
//! use gddr_routing::{softmin::{softmin_routing, SoftminConfig}, sim::max_link_utilisation};
//! use gddr_traffic::gen::{bimodal, BimodalParams};
//! use gddr_rng::SeedableRng;
//!
//! # fn main() -> Result<(), gddr_routing::sim::SimError> {
//! let g = zoo::abilene();
//! let mut rng = gddr_rng::rngs::StdRng::seed_from_u64(0);
//! let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
//! let weights = vec![1.0; g.num_edges()];
//! let routing = softmin_routing(&g, &weights, &SoftminConfig::default()).unwrap();
//! let report = max_link_utilisation(&g, &routing, &dm)?;
//! assert!(report.u_max > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod baselines;
pub mod prune;
pub mod routing;
pub mod sim;
pub mod softmin;

pub use routing::Routing;
pub use sim::UtilisationReport;
