//! Routing analysis: path-length and stretch metrics.
//!
//! The paper notes that routing loops (and, more generally, long
//! detours) "increase latency (this is generally unacceptable ...)"
//! (§VI). These metrics quantify the latency cost a load-balancing
//! routing pays: the traffic-weighted average path length, and its
//! ratio to the shortest possible ("stretch").

use gddr_net::algo::bfs_hops;
use gddr_net::{Graph, NodeId};
use gddr_traffic::DemandMatrix;

use crate::routing::Routing;
use crate::sim::{max_link_utilisation, SimError};

/// Traffic-weighted average hop count of a routing under a demand
/// matrix: every unit of demand contributes the number of edges it
/// traverses (split traffic contributes fractionally).
///
/// # Errors
///
/// Propagates flow-simulation failures.
///
/// # Panics
///
/// Panics if the demand matrix is all-zero (no traffic to average) or
/// dimensions disagree.
pub fn average_path_length(
    graph: &Graph,
    routing: &Routing,
    dm: &DemandMatrix,
) -> Result<f64, SimError> {
    let total = dm.total();
    assert!(total > 0.0, "no demand to measure");
    let report = max_link_utilisation(graph, routing, dm)?;
    // Each unit of flow on an edge is one (fractional) hop.
    Ok(report.loads.iter().sum::<f64>() / total)
}

/// The demand-weighted shortest possible average hop count (BFS hops).
///
/// # Panics
///
/// Panics if some demanded pair is unreachable or there is no demand.
pub fn shortest_average_path_length(graph: &Graph, dm: &DemandMatrix) -> f64 {
    let total = dm.total();
    assert!(total > 0.0, "no demand to measure");
    let mut weighted = 0.0;
    for s in 0..graph.num_nodes() {
        if dm.out_sum(s) == 0.0 {
            continue;
        }
        let hops = bfs_hops(graph, NodeId(s));
        for (t, &h) in hops.iter().enumerate().take(graph.num_nodes()) {
            let d = dm.get(s, t);
            if d > 0.0 {
                assert!(h != usize::MAX, "demanded pair ({s},{t}) unreachable");
                weighted += d * h as f64;
            }
        }
    }
    weighted / total
}

/// Path stretch: [`average_path_length`] divided by
/// [`shortest_average_path_length`]. 1.0 means every packet takes a
/// hop-shortest path; load-balancing routings trade stretch for lower
/// peak utilisation.
///
/// # Errors
///
/// Propagates flow-simulation failures.
pub fn path_stretch(graph: &Graph, routing: &Routing, dm: &DemandMatrix) -> Result<f64, SimError> {
    Ok(average_path_length(graph, routing, dm)? / shortest_average_path_length(graph, dm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::shortest_path_routing;
    use crate::softmin::{softmin_routing, SoftminConfig};
    use gddr_net::topology::zoo;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;
    use gddr_traffic::gen::{bimodal, BimodalParams};

    #[test]
    fn shortest_path_routing_has_unit_stretch() {
        let g = zoo::abilene();
        let mut rng = StdRng::seed_from_u64(0);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let w = vec![1.0; g.num_edges()];
        let r = shortest_path_routing(&g, &w);
        let stretch = path_stretch(&g, &r, &dm).unwrap();
        assert!(
            (stretch - 1.0).abs() < 1e-9,
            "unit-weight SP routing must be hop-shortest, got {stretch}"
        );
    }

    #[test]
    fn softmin_pays_bounded_stretch() {
        let g = zoo::abilene();
        let mut rng = StdRng::seed_from_u64(1);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let w = vec![1.0; g.num_edges()];
        let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let stretch = path_stretch(&g, &r, &dm).unwrap();
        assert!(stretch >= 1.0 - 1e-9, "stretch cannot be below 1");
        assert!(stretch < 2.0, "softmin detours are bounded, got {stretch}");
    }

    #[test]
    fn higher_gamma_reduces_stretch() {
        // Concentrating on shorter alternatives must not lengthen paths.
        let g = zoo::nsfnet();
        let mut rng = StdRng::seed_from_u64(2);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let w = vec![1.0; g.num_edges()];
        let loose = softmin_routing(
            &g,
            &w,
            &SoftminConfig {
                gamma: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = softmin_routing(
            &g,
            &w,
            &SoftminConfig {
                gamma: 8.0,
                ..Default::default()
            },
        )
        .unwrap();
        let s_loose = path_stretch(&g, &loose, &dm).unwrap();
        let s_tight = path_stretch(&g, &tight, &dm).unwrap();
        assert!(
            s_tight <= s_loose + 1e-9,
            "gamma 8 stretch {s_tight} vs gamma 0.5 stretch {s_loose}"
        );
    }

    #[test]
    fn average_length_on_single_flow() {
        // Two-hop single path: average length is exactly 2.
        let g = gddr_net::topology::from_links("path3", 3, &[(0, 1), (1, 2)], 10.0);
        let w = vec![1.0; g.num_edges()];
        let r = shortest_path_routing(&g, &w);
        let mut dm = DemandMatrix::zeros(3);
        dm.set(0, 2, 4.0);
        assert!((average_path_length(&g, &r, &dm).unwrap() - 2.0).abs() < 1e-12);
        assert!((shortest_average_path_length(&g, &dm) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no demand")]
    fn rejects_empty_demand() {
        let g = zoo::cesnet();
        let dm = DemandMatrix::zeros(g.num_nodes());
        shortest_average_path_length(&g, &dm);
    }
}
