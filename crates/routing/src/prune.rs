//! DAG conversion: breaking routing loops while retaining multipath.
//!
//! Softmin routing over arbitrary weighted graphs can create routing
//! loops (paper §VI). The paper breaks loops by converting the graph to
//! a per-flow DAG with Alg. 3 ("frontier meets"). As printed, Alg. 3 is
//! underspecified (see DESIGN.md), so this module provides:
//!
//! - [`distance_dag`] (default): keep edge `(u, v)` iff the weighted
//!   distance-to-sink strictly decreases, `d(u) > d(v)`. Guarantees
//!   acyclicity and that every node that can reach the sink keeps a
//!   path to it (its shortest-path out-edge is always downhill), while
//!   retaining every non-shortest "downhill" edge for multipath — the
//!   properties Alg. 3 is designed to provide.
//! - [`frontier_meets_dag`]: a faithful best-effort implementation of
//!   Alg. 3's construction (Dijkstra from the source, parent traceback,
//!   frontier-meet repair), validated and falling back to
//!   [`distance_dag`] if the construction yields an unusable subgraph.

use gddr_net::algo::{dijkstra, dijkstra_to_sink, is_dag};
use gddr_net::{EdgeId, Graph, NodeId};

/// Which DAG-conversion algorithm softmin routing uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Strictly-decreasing distance-to-sink filter (default).
    #[default]
    DistanceDag,
    /// The paper's Alg. 3 frontier-meets construction.
    FrontierMeets,
}

/// Edge mask keeping exactly the edges on which the weighted distance
/// to `sink` strictly decreases.
///
/// Only depends on the destination, so the result is shared by all
/// sources routing towards `sink`.
///
/// # Panics
///
/// Panics if `weights` does not cover every edge (see
/// [`dijkstra_to_sink`]).
pub fn distance_dag(graph: &Graph, sink: NodeId, weights: &[f64]) -> Vec<bool> {
    let d = dijkstra_to_sink(graph, sink, weights).dist;
    graph
        .edges()
        .map(|e| {
            let (u, v) = graph.endpoints(e);
            d[u.0].is_finite() && d[v.0].is_finite() && d[u.0] > d[v.0] + 1e-12
        })
        .collect()
}

/// The paper's Alg. 3: Dijkstra from `source`, trace the shortest path
/// back from `sink`, then use "frontier meet" edges to graft additional
/// (longer) paths onto the structure; finally keep edges that descend
/// towards the sink on the assembled path set.
///
/// If the construction fails to produce a usable DAG (every node kept
/// must still reach the sink), the result falls back to
/// [`distance_dag`], which provides the guarantees Alg. 3 promises.
///
/// # Panics
///
/// Panics if `weights` does not cover every edge.
pub fn frontier_meets_dag(
    graph: &Graph,
    source: NodeId,
    sink: NodeId,
    weights: &[f64],
) -> Vec<bool> {
    let n = graph.num_nodes();
    let sp = dijkstra(graph, source, weights);
    if !sp.reachable(sink) {
        return vec![false; graph.num_edges()];
    }
    // Parent = predecessor edge on the shortest path from the source.
    let parent: Vec<Option<EdgeId>> = sp.via.clone();

    // Frontier meets: edges joining two nodes that were both reached,
    // but that are not parent edges (these are where the Dijkstra
    // frontier collided with already-explored territory).
    let frontier_meets: Vec<EdgeId> = graph
        .edges()
        .filter(|&e| {
            let (u, v) = graph.endpoints(e);
            sp.reachable(u) && sp.reachable(v) && parent[v.0] != Some(e) && u != v
        })
        .collect();

    // Trace back from the sink, marking the shortest path and assigning
    // distance-to-sink labels along it.
    let mut on_path = vec![false; n];
    let mut dist_to_sink = vec![f64::INFINITY; n];
    {
        let mut v = sink;
        on_path[v.0] = true;
        dist_to_sink[v.0] = 0.0;
        while let Some(e) = parent[v.0] {
            let p = graph.src(e);
            dist_to_sink[p.0] = dist_to_sink[v.0] + weights[e.0];
            on_path[p.0] = true;
            v = p;
        }
    }

    // Walk parent links from `x` until hitting an on-path node; returns
    // the chain (x excluded ancestors included) if one exists.
    let ancestor_chain = |x: NodeId, on_path: &[bool]| -> Option<Vec<EdgeId>> {
        let mut chain = Vec::new();
        let mut v = x;
        while !on_path[v.0] {
            let e = parent[v.0]?;
            chain.push(e);
            v = graph.src(e);
            if chain.len() > n {
                return None;
            }
        }
        Some(chain)
    };

    // For every frontier meet, graft the longer side onto the path set:
    // nodes along both parent chains become on-path, with
    // distance-to-sink labels propagated through the meet edge in the
    // direction from the farther ancestor to the closer one.
    for e in frontier_meets {
        let (u, v) = graph.endpoints(e);
        let (Some(chain_u), Some(chain_v)) =
            (ancestor_chain(u, &on_path), ancestor_chain(v, &on_path))
        else {
            continue;
        };
        // Ancestors where each chain touches the existing path set.
        let a = chain_u.last().map_or(u, |&le| graph.src(le));
        let b = chain_v.last().map_or(v, |&le| graph.src(le));
        if !dist_to_sink[a.0].is_finite() || !dist_to_sink[b.0].is_finite() {
            continue;
        }
        if (dist_to_sink[a.0] - dist_to_sink[b.0]).abs() < 1e-12 {
            continue; // Paper: skip equal-distance collisions.
        }
        // Label a parent chain on one side of the meet: chain edges run
        // from the meet endpoint back towards `end`; distances flow up
        // from the ancestor.
        fn label_chain(
            graph: &Graph,
            weights: &[f64],
            chain: &[EdgeId],
            end: NodeId,
            dist_to_sink: &mut [f64],
            on_path: &mut [bool],
        ) {
            let mut below: Vec<NodeId> = Vec::new();
            let mut x = if chain.is_empty() {
                end
            } else {
                graph.dst(chain[0])
            };
            below.push(x);
            for &ce in chain {
                x = graph.src(ce);
                below.push(x);
            }
            // `below` = [meet endpoint, ..., ancestor].
            for i in (0..below.len().saturating_sub(1)).rev() {
                let upper = below[i];
                let lower = below[i + 1];
                if let Some(edge) = graph.edge_between(upper, lower) {
                    let cand = dist_to_sink[lower.0] + weights[edge.0];
                    if cand < dist_to_sink[upper.0] {
                        dist_to_sink[upper.0] = cand;
                    }
                    on_path[upper.0] = true;
                }
            }
        }
        // Direction: route across the meet edge from farther to closer.
        if dist_to_sink[a.0] > dist_to_sink[b.0] {
            // Flow goes u-side → v-side: label v's chain first (towards
            // b), then u's chain picks up distance through the meet edge.
            label_chain(graph, weights, &chain_v, b, &mut dist_to_sink, &mut on_path);
            if dist_to_sink[v.0].is_finite() {
                let cand = dist_to_sink[v.0] + weights[e.0];
                if cand < dist_to_sink[u.0] {
                    dist_to_sink[u.0] = cand;
                }
                on_path[u.0] = true;
                label_chain(graph, weights, &chain_u, a, &mut dist_to_sink, &mut on_path);
            }
        } else {
            label_chain(graph, weights, &chain_u, a, &mut dist_to_sink, &mut on_path);
            if let Some(rev) = graph.edge_between(v, u) {
                if dist_to_sink[u.0].is_finite() {
                    let cand = dist_to_sink[u.0] + weights[rev.0];
                    if cand < dist_to_sink[v.0] {
                        dist_to_sink[v.0] = cand;
                    }
                    on_path[v.0] = true;
                    label_chain(graph, weights, &chain_v, b, &mut dist_to_sink, &mut on_path);
                }
            }
        }
    }

    // Keep edges that descend towards the sink within the on-path set.
    let mask: Vec<bool> = graph
        .edges()
        .map(|e| {
            let (x, y) = graph.endpoints(e);
            on_path[x.0]
                && on_path[y.0]
                && dist_to_sink[x.0].is_finite()
                && dist_to_sink[y.0].is_finite()
                && dist_to_sink[x.0] > dist_to_sink[y.0] + 1e-12
        })
        .collect();

    if mask_is_usable(graph, source, sink, &mask) {
        mask
    } else {
        distance_dag(graph, sink, weights)
    }
}

/// Whether the masked subgraph is a DAG in which the source can reach
/// the sink and every node reachable from the source reaches the sink.
pub fn mask_is_usable(graph: &Graph, source: NodeId, sink: NodeId, mask: &[bool]) -> bool {
    if !is_dag(graph, mask) {
        return false;
    }
    // Forward reachability from the source over masked edges.
    let n = graph.num_nodes();
    let mut fwd = vec![false; n];
    let mut stack = vec![source];
    fwd[source.0] = true;
    while let Some(v) = stack.pop() {
        for &e in graph.out_edges(v) {
            if mask[e.0] {
                let u = graph.dst(e);
                if !fwd[u.0] {
                    fwd[u.0] = true;
                    stack.push(u);
                }
            }
        }
    }
    if !fwd[sink.0] {
        return false;
    }
    // Backward reachability to the sink over masked edges.
    let mut bwd = vec![false; n];
    let mut stack = vec![sink];
    bwd[sink.0] = true;
    while let Some(v) = stack.pop() {
        for &e in graph.in_edges(v) {
            if mask[e.0] {
                let u = graph.src(e);
                if !bwd[u.0] {
                    bwd[u.0] = true;
                    stack.push(u);
                }
            }
        }
    }
    // Every node the flow can enter must be able to leave towards the
    // sink; otherwise traffic would be lost there.
    (0..n).all(|v| !fwd[v] || bwd[v] || v == sink.0)
}

/// Dispatches on [`PruneMode`].
pub fn prune(
    graph: &Graph,
    source: NodeId,
    sink: NodeId,
    weights: &[f64],
    mode: PruneMode,
) -> Vec<bool> {
    match mode {
        PruneMode::DistanceDag => distance_dag(graph, sink, weights),
        PruneMode::FrontierMeets => frontier_meets_dag(graph, source, sink, weights),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::{Rng, SeedableRng};

    fn random_weights(m: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..m).map(|_| rng.gen_range(0.5..5.0)).collect()
    }

    #[test]
    fn distance_dag_is_acyclic_and_usable_everywhere() {
        let mut rng = StdRng::seed_from_u64(0);
        for g in [zoo::abilene(), zoo::nsfnet(), zoo::geant()] {
            let w = random_weights(g.num_edges(), &mut rng);
            for t in 0..g.num_nodes() {
                let mask = distance_dag(&g, NodeId(t), &w);
                assert!(is_dag(&g, &mask), "{}: cycle for sink {t}", g.name());
                for s in 0..g.num_nodes() {
                    if s != t {
                        assert!(
                            mask_is_usable(&g, NodeId(s), NodeId(t), &mask),
                            "{}: unusable mask for ({s},{t})",
                            g.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distance_dag_keeps_nonshortest_downhill_edges() {
        // Triangle with distinct weights: 0-1 (1.0), 1-2 (1.0), 0-2 (3.0).
        // Sink 2: edge 0→2 (distance 3 → 0) and 0→1 (2 → 1) both kept:
        // multipath retained.
        let mut g = gddr_net::Graph::new("tri");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let (e_ab, _) = g.add_link(a, b, 1.0).unwrap();
        let (e_bc, _) = g.add_link(b, c, 1.0).unwrap();
        let (e_ac, _) = g.add_link(a, c, 1.0).unwrap();
        let mut w = vec![0.0; g.num_edges()];
        w[e_ab.0] = 1.0;
        w[e_bc.0] = 1.0;
        w[e_ac.0] = 3.0;
        // Set reverse weights symmetric.
        for e in g.edges() {
            if w[e.0] == 0.0 {
                let (s, t) = g.endpoints(e);
                let rev = g.edge_between(t, s).unwrap();
                w[e.0] = w[rev.0];
            }
        }
        let mask = distance_dag(&g, c, &w);
        assert!(mask[e_ac.0], "direct (longer) edge must be retained");
        assert!(mask[e_ab.0]);
        assert!(mask[e_bc.0]);
        // Reverse edges all dropped.
        assert_eq!(mask.iter().filter(|&&m| m).count(), 3);
    }

    #[test]
    fn frontier_meets_is_acyclic_and_usable() {
        let mut rng = StdRng::seed_from_u64(1);
        for g in [zoo::abilene(), zoo::b4()] {
            let w = random_weights(g.num_edges(), &mut rng);
            for s in 0..g.num_nodes() {
                for t in 0..g.num_nodes() {
                    if s == t {
                        continue;
                    }
                    let mask = frontier_meets_dag(&g, NodeId(s), NodeId(t), &w);
                    assert!(is_dag(&g, &mask), "{}: cycle ({s},{t})", g.name());
                    assert!(
                        mask_is_usable(&g, NodeId(s), NodeId(t), &mask),
                        "{}: unusable ({s},{t})",
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_meets_retains_at_least_shortest_path() {
        let g = zoo::abilene();
        let w = vec![1.0; g.num_edges()];
        let mask = frontier_meets_dag(&g, NodeId(0), NodeId(10), &w);
        let kept = mask.iter().filter(|&&m| m).count();
        assert!(kept >= 3, "too few edges kept: {kept}");
    }

    #[test]
    fn prune_dispatch() {
        let g = zoo::cesnet();
        let w = vec![1.0; g.num_edges()];
        let a = prune(&g, NodeId(0), NodeId(5), &w, PruneMode::DistanceDag);
        let b = distance_dag(&g, NodeId(5), &w);
        assert_eq!(a, b);
        let c = prune(&g, NodeId(0), NodeId(5), &w, PruneMode::FrontierMeets);
        assert!(is_dag(&g, &c));
    }

    #[test]
    fn unreachable_sink_gives_empty_mask() {
        let mut g = gddr_net::Graph::new("disc");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let iso = g.add_node("iso");
        g.add_link(a, b, 1.0).unwrap();
        let w = vec![1.0; g.num_edges()];
        let mask = frontier_meets_dag(&g, a, iso, &w);
        assert!(mask.iter().all(|&m| !m));
    }

    /// Nodes that can reach `sink` through edges kept by `mask`.
    fn masked_reaches_sink(g: &gddr_net::Graph, sink: NodeId, mask: &[bool]) -> Vec<bool> {
        let mut seen = vec![false; g.num_nodes()];
        seen[sink.0] = true;
        let mut stack = vec![sink];
        while let Some(v) = stack.pop() {
            for &e in g.in_edges(v) {
                if mask[e.0] && !seen[g.src(e).0] {
                    seen[g.src(e).0] = true;
                    stack.push(g.src(e));
                }
            }
        }
        seen
    }

    /// Seeded property loop over both prune modes, random and zoo
    /// topologies: the kept subgraph is acyclic, usable from source to
    /// sink, and the sink stays reachable from every node the mask
    /// lets the source reach (no dead ends a flow could leak into).
    #[test]
    fn prune_property_acyclic_and_sink_reachable() {
        use gddr_net::topology::random::erdos_renyi;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = match seed % 4 {
                0 => zoo::abilene(),
                1 => zoo::nsfnet(),
                2 => erdos_renyi(rng.gen_range(4..10usize), 0.35, 100.0, &mut rng),
                _ => erdos_renyi(rng.gen_range(6..14usize), 0.2, 100.0, &mut rng),
            };
            let w = random_weights(g.num_edges(), &mut rng);
            let source = NodeId(rng.gen_range(0..g.num_nodes()));
            let mut sink = NodeId(rng.gen_range(0..g.num_nodes()));
            if sink == source {
                sink = NodeId((sink.0 + 1) % g.num_nodes());
            }
            for mode in [PruneMode::DistanceDag, PruneMode::FrontierMeets] {
                let mask = prune(&g, source, sink, &w, mode);
                assert!(
                    is_dag(&g, &mask),
                    "seed {seed} {mode:?}: pruned subgraph has a cycle"
                );
                assert!(
                    mask_is_usable(&g, source, sink, &mask),
                    "seed {seed} {mode:?}: mask unusable"
                );
                // No dead ends: every node the mask lets the source
                // reach must still reach the sink through the mask.
                let to_sink = masked_reaches_sink(&g, sink, &mask);
                let mut stack = vec![source];
                let mut fwd = vec![false; g.num_nodes()];
                fwd[source.0] = true;
                while let Some(v) = stack.pop() {
                    for &e in g.out_edges(v) {
                        if mask[e.0] && !fwd[g.dst(e).0] {
                            fwd[g.dst(e).0] = true;
                            stack.push(g.dst(e));
                        }
                    }
                }
                for v in 0..g.num_nodes() {
                    if fwd[v] {
                        assert!(
                            to_sink[v],
                            "seed {seed} {mode:?}: node {v} entered but cannot reach sink"
                        );
                    }
                }
                // The distance DAG keeps a sink path for *every* node
                // (zoo and Erdős–Rényi graphs here are strongly
                // connected, so every node reaches the sink in full).
                if mode == PruneMode::DistanceDag {
                    for (v, reaches) in to_sink.iter().enumerate() {
                        assert!(reaches, "seed {seed}: node {v} lost its path to the sink");
                    }
                }
            }
        }
    }

    #[test]
    fn multipath_retention_distance_dag_counts_paths() {
        // On Abilene with unit weights, the sink-side DAG should retain
        // strictly more edges than a shortest-path tree (which has
        // n - 1 = 10 edges).
        let g = zoo::abilene();
        let w = vec![1.0; g.num_edges()];
        let mask = distance_dag(&g, NodeId(4), &w);
        let kept = mask.iter().filter(|&&m| m).count();
        assert!(kept > 10, "DAG keeps only a tree: {kept} edges");
    }
}
