//! Classical routing baselines.
//!
//! - [`shortest_path_routing`]: single shortest path per flow, the
//!   baseline shown as the dotted line in the paper's Figs. 6 and 8,
//! - [`ecmp_routing`]: equal-cost multipath splitting (OSPF-style),
//! - [`inverse_capacity_routing`]: ECMP over inverse-capacity weights,
//!   a traffic-oblivious heuristic in the spirit of the oblivious
//!   schemes of §X-A.

use gddr_net::algo::dijkstra_to_sink;
use gddr_net::{Graph, NodeId};

use crate::routing::Routing;

/// Single shortest-path routing over the given edge weights: each node
/// forwards everything along its (deterministically tie-broken)
/// shortest out-edge towards the destination.
///
/// # Panics
///
/// Panics if `weights` does not cover every edge, contains
/// non-positive values, or the graph is not strongly connected.
pub fn shortest_path_routing(graph: &Graph, weights: &[f64]) -> Routing {
    check(graph, weights);
    let n = graph.num_nodes();
    let mut routing = Routing::new(n, graph.num_edges());
    for t in 0..n {
        let d = dijkstra_to_sink(graph, NodeId(t), weights).dist;
        let mut ratios = vec![0.0; graph.num_edges()];
        for v in graph.nodes() {
            if v.0 == t {
                continue;
            }
            // Pick the out-edge minimising w(e) + d(head), lowest edge
            // id on ties.
            let best = graph
                .out_edges(v)
                .iter()
                .copied()
                .filter(|&e| d[graph.dst(e).0].is_finite())
                .min_by(|&a, &b| {
                    let sa = weights[a.0] + d[graph.dst(a).0];
                    let sb = weights[b.0] + d[graph.dst(b).0];
                    sa.partial_cmp(&sb).expect("finite scores").then(a.cmp(&b))
                })
                .expect("strongly connected graph has an out-path");
            ratios[best.0] = 1.0;
        }
        routing.set_dest_flow(t, ratios);
    }
    routing
}

/// Equal-cost multipath routing: at each node, traffic splits equally
/// over all out-edges that lie on *some* shortest path to the
/// destination (`w(e) + d(head) = d(node)` within tolerance).
///
/// # Panics
///
/// Same conditions as [`shortest_path_routing`].
pub fn ecmp_routing(graph: &Graph, weights: &[f64]) -> Routing {
    check(graph, weights);
    let n = graph.num_nodes();
    let mut routing = Routing::new(n, graph.num_edges());
    for t in 0..n {
        let d = dijkstra_to_sink(graph, NodeId(t), weights).dist;
        let mut ratios = vec![0.0; graph.num_edges()];
        for v in graph.nodes() {
            if v.0 == t {
                continue;
            }
            let on_sp: Vec<_> = graph
                .out_edges(v)
                .iter()
                .copied()
                .filter(|&e| {
                    let head = graph.dst(e).0;
                    d[head].is_finite() && (weights[e.0] + d[head] - d[v.0]).abs() < 1e-9
                })
                .collect();
            assert!(
                !on_sp.is_empty(),
                "strongly connected graph has a shortest-path edge"
            );
            let share = 1.0 / on_sp.len() as f64;
            for e in on_sp {
                ratios[e.0] = share;
            }
        }
        routing.set_dest_flow(t, ratios);
    }
    routing
}

/// Traffic-oblivious ECMP over inverse-capacity weights: high-capacity
/// links look short, spreading load towards them regardless of demand.
pub fn inverse_capacity_routing(graph: &Graph) -> Routing {
    let weights: Vec<f64> = graph
        .edges()
        .map(|e| 1.0 / graph.capacity(e).max(f64::MIN_POSITIVE))
        .collect();
    ecmp_routing(graph, &weights)
}

fn check(graph: &Graph, weights: &[f64]) {
    assert_eq!(
        weights.len(),
        graph.num_edges(),
        "one weight per edge required"
    );
    assert!(
        weights.iter().all(|&w| w.is_finite() && w > 0.0),
        "weights must be positive and finite"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::max_link_utilisation;
    use gddr_net::topology::{from_links, zoo};
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;
    use gddr_traffic::gen::{bimodal, BimodalParams};
    use gddr_traffic::DemandMatrix;

    #[test]
    fn shortest_path_is_valid_and_single_path() {
        let g = zoo::abilene();
        let w = vec![1.0; g.num_edges()];
        let r = shortest_path_routing(&g, &w);
        assert!(r.validate(&g).is_empty());
        // Every flow's ratios are 0/1 only.
        for (_, ratios) in r.iter() {
            assert!(ratios.iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    #[test]
    fn ecmp_splits_equal_paths() {
        let g = from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0);
        let w = vec![1.0; g.num_edges()];
        let r = ecmp_routing(&g, &w);
        let ratios = r.flow(0, 3).unwrap();
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(ratios[e01.0], 0.5);
        assert_eq!(ratios[e02.0], 0.5);
    }

    #[test]
    fn ecmp_beats_or_ties_single_path_on_diamond() {
        let g = from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0);
        let w = vec![1.0; g.num_edges()];
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 10.0);
        let sp = max_link_utilisation(&g, &shortest_path_routing(&g, &w), &dm)
            .unwrap()
            .u_max;
        let ecmp = max_link_utilisation(&g, &ecmp_routing(&g, &w), &dm)
            .unwrap()
            .u_max;
        assert!(ecmp <= sp);
        assert!((ecmp - 0.5).abs() < 1e-12);
        assert!((sp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baselines_route_all_traffic_on_zoo_graphs() {
        let mut rng = StdRng::seed_from_u64(0);
        for g in [zoo::cesnet(), zoo::abilene(), zoo::nsfnet()] {
            let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
            let w = vec![1.0; g.num_edges()];
            for r in [
                shortest_path_routing(&g, &w),
                ecmp_routing(&g, &w),
                inverse_capacity_routing(&g),
            ] {
                let rep = max_link_utilisation(&g, &r, &dm).unwrap();
                assert!(rep.u_max > 0.0, "{}", g.name());
            }
        }
    }

    #[test]
    fn inverse_capacity_prefers_fat_links() {
        // Two parallel 2-hop paths; the one via node 1 has 10x capacity.
        let mut g = gddr_net::Graph::new("fat");
        let n: Vec<_> = (0..4).map(|i| g.add_node(format!("n{i}"))).collect();
        g.add_link(n[0], n[1], 100.0).unwrap();
        g.add_link(n[1], n[3], 100.0).unwrap();
        g.add_link(n[0], n[2], 10.0).unwrap();
        g.add_link(n[2], n[3], 10.0).unwrap();
        let r = inverse_capacity_routing(&g);
        let ratios = r.flow(0, 3).unwrap();
        let fat = g.edge_between(n[0], n[1]).unwrap();
        let thin = g.edge_between(n[0], n[2]).unwrap();
        assert!(ratios[fat.0] > ratios[thin.0]);
    }
}
