//! The splitting-ratio routing representation.
//!
//! Paper §IV-A: a routing specifies, for each flow `(s, t)` and each
//! vertex `v`, the proportion of the flow passing through `v` that is
//! forwarded along each out-edge. Two constraints must hold:
//!
//! 1. no traffic is lost: the out ratios at every `v ≠ t` sum to 1
//!    (for vertices that can carry the flow),
//! 2. all traffic is absorbed at the destination: out ratios at `t`
//!    are 0.

use std::collections::HashMap;
use std::sync::Arc;

use gddr_net::{EdgeId, Graph, NodeId};

/// Splitting ratios for every flow on a graph.
///
/// `ratios(s, t)[e]` is the fraction of flow `(s, t)` arriving at
/// `src(e)` that is forwarded along edge `e`. Flows that were never set
/// have no entry (useful when a demand matrix is sparse).
///
/// # Representation
///
/// Destination-based routings (softmin over the distance DAG, ECMP,
/// shortest path, LP destination flows) use the same ratio vector for
/// every source of a destination. Those are stored **once per
/// destination** behind an [`Arc`] ([`Routing::set_dest_flow`]) and
/// shared by every `(s, t)` lookup, so a routing on an `n`-node graph
/// costs `O(n · m)` memory instead of `O(n² · m)` — the difference
/// between ~6 MB and ~2.5 GB on a 400-node WAN. Per-pair overrides
/// ([`Routing::set_flow`]) still exist and win over the shared entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Routing {
    num_nodes: usize,
    num_edges: usize,
    /// Per-pair overrides; take precedence over `dest_flows`.
    flows: HashMap<(usize, usize), Arc<Vec<f64>>>,
    /// Destination-shared ratios: every source `s ≠ t` without an
    /// override in `flows` routes to `t` with these ratios.
    dest_flows: HashMap<usize, Arc<Vec<f64>>>,
}

/// Violations reported by [`Routing::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingViolation {
    /// A ratio was negative or non-finite.
    InvalidRatio { flow: (usize, usize), edge: EdgeId },
    /// Out ratios at a vertex sum to something other than 0 or 1.
    UnbalancedNode {
        flow: (usize, usize),
        node: NodeId,
        sum: f64,
    },
    /// The destination forwards traffic instead of absorbing it.
    LeakyDestination { flow: (usize, usize) },
    /// The routing's dimensions disagree with the graph it is validated
    /// against (node or edge counts differ).
    SizeMismatch {
        /// `(graph, routing)` node counts.
        nodes: (usize, usize),
        /// `(graph, routing)` edge counts.
        edges: (usize, usize),
    },
}

impl std::fmt::Display for RoutingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingViolation::InvalidRatio { flow, edge } => {
                write!(f, "flow {flow:?}: invalid ratio on edge {edge}")
            }
            RoutingViolation::UnbalancedNode { flow, node, sum } => {
                write!(f, "flow {flow:?}: out ratios at {node} sum to {sum}")
            }
            RoutingViolation::LeakyDestination { flow } => {
                write!(f, "flow {flow:?}: destination forwards traffic")
            }
            RoutingViolation::SizeMismatch { nodes, edges } => {
                write!(
                    f,
                    "graph has {} nodes / {} edges but routing covers {} / {}",
                    nodes.0, edges.0, nodes.1, edges.1
                )
            }
        }
    }
}

impl Routing {
    /// An empty routing for a graph of the given dimensions.
    pub fn new(num_nodes: usize, num_edges: usize) -> Self {
        Routing {
            num_nodes,
            num_edges,
            flows: HashMap::new(),
            dest_flows: HashMap::new(),
        }
    }

    /// Number of nodes this routing is defined over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges this routing is defined over.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of flows with ratios set.
    ///
    /// A destination-shared entry counts as `num_nodes - 1` flows (one
    /// per source), minus any per-pair overrides for that destination
    /// which are counted separately.
    pub fn num_flows(&self) -> usize {
        let mut n = self.flows.len();
        for &t in self.dest_flows.keys() {
            let overrides = self.flows.keys().filter(|k| k.1 == t).count();
            n += self.num_nodes.saturating_sub(1) - overrides;
        }
        n
    }

    /// Sets the per-edge splitting ratios for flow `(s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the edge count or
    /// `s == t`.
    pub fn set_flow(&mut self, s: usize, t: usize, ratios: Vec<f64>) {
        assert_eq!(ratios.len(), self.num_edges, "one ratio per edge");
        assert_ne!(s, t, "a flow needs distinct endpoints");
        self.flows.insert((s, t), Arc::new(ratios));
    }

    /// Sets shared splitting ratios used by **every** source routing to
    /// destination `t` — the natural form for destination-based
    /// routings (softmin over the distance DAG, ECMP, shortest path).
    /// One allocation serves all `n - 1` sources.
    ///
    /// Any per-pair overrides for destination `t` are cleared so the
    /// shared entry governs every lookup, mirroring the semantics of
    /// [`Routing::replicate_destination`].
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the edge count.
    pub fn set_dest_flow(&mut self, t: usize, ratios: Vec<f64>) {
        assert_eq!(ratios.len(), self.num_edges, "one ratio per edge");
        self.flows.retain(|k, _| k.1 != t);
        self.dest_flows.insert(t, Arc::new(ratios));
    }

    /// The ratios for flow `(s, t)`, if set.
    ///
    /// Per-pair entries win; otherwise a destination-shared entry for
    /// `t` answers for every source `s ≠ t`.
    pub fn flow(&self, s: usize, t: usize) -> Option<&[f64]> {
        if s == t {
            return None;
        }
        self.flows
            .get(&(s, t))
            .or_else(|| self.dest_flows.get(&t))
            .map(|r| r.as_slice())
    }

    /// Iterates over `((s, t), ratios)` pairs, expanding
    /// destination-shared entries to one pair per source.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &[f64])> {
        let pairs = self.flows.iter().map(|(&k, v)| (k, v.as_slice()));
        let shared = self.dest_flows.iter().flat_map(move |(&t, v)| {
            (0..self.num_nodes).filter_map(move |s| {
                if s == t || self.flows.contains_key(&(s, t)) {
                    None
                } else {
                    Some(((s, t), v.as_slice()))
                }
            })
        });
        pairs.chain(shared)
    }

    /// Iterates over `(t, ratios)` destination-shared entries without
    /// expanding them per source.
    pub fn dest_flows(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.dest_flows.iter().map(|(&t, v)| (t, v.as_slice()))
    }

    /// Iterates over per-pair `((s, t), ratios)` overrides only,
    /// without expanding destination-shared entries. Together with
    /// [`Routing::dest_flows`] this exposes the exact internal
    /// representation, which snapshot codecs need to persist a routing
    /// without inflating shared entries into `n - 1` copies.
    pub fn pair_flows(&self) -> impl Iterator<Item = ((usize, usize), &[f64])> {
        self.flows.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Promotes the ratios of flow `(from_source, t)` to the shared
    /// per-destination entry used by every other source — used by
    /// destination-based routings (softmin with the distance DAG, ECMP)
    /// where ratios do not depend on the source. The ratios are shared,
    /// not copied: this is `O(1)` in the number of sources.
    pub fn replicate_destination(&mut self, from_source: usize, t: usize) {
        if let Some(r) = self.flows.get(&(from_source, t)).cloned() {
            self.flows.retain(|k, _| k.1 != t);
            self.dest_flows.insert(t, r);
        }
    }

    /// Builds a destination-based routing from per-destination edge
    /// flows (e.g. an LP solution: `flows[t][e]` is the volume destined
    /// to `t` on edge `e`).
    ///
    /// Flow cycles — which an LP may leave in degenerate solutions and
    /// which would trap simulated traffic — are cancelled first
    /// (subtracting the minimum flow around each cycle leaves net flows
    /// unchanged). Splitting ratios at each node are the edge's share
    /// of the node's outgoing flow.
    ///
    /// # Panics
    ///
    /// Panics if `flows` does not have one entry per node or an inner
    /// vector does not cover every edge.
    pub fn from_destination_flows(graph: &Graph, flows: &[Vec<f64>]) -> Routing {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        assert_eq!(flows.len(), n, "one flow vector per destination");
        let mut routing = Routing::new(n, m);
        for (t, per_dest) in flows.iter().enumerate() {
            assert_eq!(per_dest.len(), m, "one flow per edge");
            let mut flow = per_dest.clone();
            cancel_cycles(graph, &mut flow);
            let mut ratios = vec![0.0; m];
            for v in graph.nodes() {
                if v.0 == t {
                    continue;
                }
                let out: f64 = graph.out_edges(v).iter().map(|&e| flow[e.0]).sum();
                if out <= 1e-12 {
                    continue;
                }
                for &e in graph.out_edges(v) {
                    ratios[e.0] = flow[e.0] / out;
                }
            }
            routing.set_dest_flow(t, ratios);
        }
        routing
    }

    /// Checks the §IV-A validity constraints against `graph`, returning
    /// every violation found.
    ///
    /// A node's out ratios may sum to 0 (the node never carries the
    /// flow) or 1 (it forwards everything); anything else is reported.
    ///
    /// A dimension disagreement between the routing and the graph is
    /// itself reported as a [`RoutingViolation::SizeMismatch`] (no
    /// per-flow checks are attempted in that case — indexing would be
    /// meaningless).
    pub fn validate(&self, graph: &Graph) -> Vec<RoutingViolation> {
        if graph.num_nodes() != self.num_nodes || graph.num_edges() != self.num_edges {
            return vec![RoutingViolation::SizeMismatch {
                nodes: (graph.num_nodes(), self.num_nodes),
                edges: (graph.num_edges(), self.num_edges),
            }];
        }
        let mut violations = Vec::new();
        let mut check = |s: usize, t: usize, ratios: &[f64]| {
            for e in graph.edges() {
                let r = ratios[e.0];
                if !r.is_finite() || !(0.0..=1.0 + 1e-9).contains(&r) {
                    violations.push(RoutingViolation::InvalidRatio {
                        flow: (s, t),
                        edge: e,
                    });
                }
            }
            for v in graph.nodes() {
                let sum: f64 = graph.out_edges(v).iter().map(|&e| ratios[e.0]).sum();
                if v.0 == t {
                    if sum > 1e-9 {
                        violations.push(RoutingViolation::LeakyDestination { flow: (s, t) });
                    }
                } else if sum > 1e-9 && (sum - 1.0).abs() > 1e-6 {
                    violations.push(RoutingViolation::UnbalancedNode {
                        flow: (s, t),
                        node: v,
                        sum,
                    });
                }
            }
        };
        for (&(s, t), ratios) in &self.flows {
            check(s, t, ratios);
        }
        // A shared destination entry is source-independent, so checking
        // it once (with a representative source) covers every source.
        for (&t, ratios) in &self.dest_flows {
            let s0 = usize::from(t == 0);
            check(s0, t, ratios);
        }
        violations
    }
}

/// Removes cycles from a positive-flow subgraph by cancelling the
/// minimum flow around each directed cycle found.
fn cancel_cycles(graph: &Graph, flow: &mut [f64]) {
    const EPS: f64 = 1e-12;
    loop {
        // DFS for a cycle in the positive-flow subgraph.
        let n = graph.num_nodes();
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut via: Vec<Option<EdgeId>> = vec![None; n];
        let mut cycle: Option<Vec<EdgeId>> = None;

        'outer: for start in graph.nodes() {
            if colour[start.0] != 0 {
                continue;
            }
            // Iterative DFS with an explicit edge-index stack.
            let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
            colour[start.0] = 1;
            while let Some(&(v, idx)) = stack.last() {
                let outs = graph.out_edges(v);
                if idx >= outs.len() {
                    colour[v.0] = 2;
                    stack.pop();
                    continue;
                }
                stack.last_mut().expect("stack non-empty").1 += 1;
                let e = outs[idx];
                if flow[e.0] <= EPS {
                    continue;
                }
                let u = graph.dst(e);
                match colour[u.0] {
                    0 => {
                        via[u.0] = Some(e);
                        colour[u.0] = 1;
                        stack.push((u, 0));
                    }
                    1 => {
                        // Found a cycle: walk back from v to u.
                        let mut edges = vec![e];
                        let mut x = v;
                        while x != u {
                            let pe = via[x.0].expect("grey nodes have parents");
                            edges.push(pe);
                            x = graph.src(pe);
                        }
                        cycle = Some(edges);
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }

        match cycle {
            Some(edges) => {
                let min = edges
                    .iter()
                    .map(|e| flow[e.0])
                    .fold(f64::INFINITY, f64::min);
                for e in edges {
                    flow[e.0] = (flow[e.0] - min).max(0.0);
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::from_links;

    fn diamond() -> Graph {
        from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0)
    }

    #[test]
    fn set_and_get_flow() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        // Send everything 0 -> 1 -> 3.
        ratios[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 1.0;
        ratios[g.edge_between(NodeId(1), NodeId(3)).unwrap().0] = 1.0;
        r.set_flow(0, 3, ratios);
        assert_eq!(r.num_flows(), 1);
        assert!(r.flow(0, 3).is_some());
        assert!(r.flow(3, 0).is_none());
        assert!(r.validate(&g).is_empty());
    }

    #[test]
    fn validate_catches_unbalanced_node() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        ratios[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 0.6; // should be 1.0
        r.set_flow(0, 3, ratios);
        let v = r.validate(&g);
        assert!(v
            .iter()
            .any(|x| matches!(x, RoutingViolation::UnbalancedNode { .. })));
    }

    #[test]
    fn validate_catches_leaky_destination() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        ratios[g.edge_between(NodeId(3), NodeId(1)).unwrap().0] = 1.0;
        r.set_flow(0, 3, ratios);
        let v = r.validate(&g);
        assert!(v
            .iter()
            .any(|x| matches!(x, RoutingViolation::LeakyDestination { .. })));
    }

    #[test]
    fn validate_catches_negative_ratio() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        ratios[0] = -0.5;
        r.set_flow(0, 3, ratios);
        let v = r.validate(&g);
        assert!(v
            .iter()
            .any(|x| matches!(x, RoutingViolation::InvalidRatio { .. })));
    }

    #[test]
    fn replicate_destination_copies_ratios() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        ratios[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 1.0;
        ratios[g.edge_between(NodeId(1), NodeId(3)).unwrap().0] = 1.0;
        r.set_flow(0, 3, ratios.clone());
        r.replicate_destination(0, 3);
        assert_eq!(r.flow(1, 3).unwrap(), ratios.as_slice());
        assert_eq!(r.flow(2, 3).unwrap(), ratios.as_slice());
        assert_eq!(r.num_flows(), 3);
    }

    #[test]
    fn from_destination_flows_builds_valid_routing() {
        let g = diamond();
        // Destination 3: 6 units via node 1, 4 units via node 2.
        let mut flows = vec![vec![0.0; g.num_edges()]; 4];
        let f = &mut flows[3];
        f[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 6.0;
        f[g.edge_between(NodeId(1), NodeId(3)).unwrap().0] = 6.0;
        f[g.edge_between(NodeId(0), NodeId(2)).unwrap().0] = 4.0;
        f[g.edge_between(NodeId(2), NodeId(3)).unwrap().0] = 4.0;
        let r = Routing::from_destination_flows(&g, &flows);
        assert!(r.validate(&g).is_empty());
        let ratios = r.flow(0, 3).unwrap();
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert!((ratios[e01.0] - 0.6).abs() < 1e-12);
        // Destination ratios are shared by every source.
        assert_eq!(r.flow(2, 3).unwrap(), ratios);
    }

    #[test]
    fn from_destination_flows_cancels_cycles() {
        // Path 0 -> 1 -> 3 plus a spurious 1 <-> 2 circulation of 5.
        let g = from_links("cyc", 4, &[(0, 1), (1, 3), (1, 2)], 10.0);
        let mut flows = vec![vec![0.0; g.num_edges()]; 4];
        let f = &mut flows[3];
        f[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 8.0;
        f[g.edge_between(NodeId(1), NodeId(3)).unwrap().0] = 8.0;
        f[g.edge_between(NodeId(1), NodeId(2)).unwrap().0] = 5.0;
        f[g.edge_between(NodeId(2), NodeId(1)).unwrap().0] = 5.0;
        let r = Routing::from_destination_flows(&g, &flows);
        let ratios = r.flow(0, 3).unwrap();
        // The circulation must be gone: node 1 forwards everything to 3.
        let e13 = g.edge_between(NodeId(1), NodeId(3)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert!((ratios[e13.0] - 1.0).abs() < 1e-12);
        assert_eq!(ratios[e12.0], 0.0);
        assert!(r.validate(&g).is_empty());
    }

    #[test]
    fn validate_reports_size_mismatch_instead_of_panicking() {
        let g = diamond();
        let r = Routing::new(g.num_nodes() + 1, g.num_edges());
        let v = r.validate(&g);
        assert_eq!(
            v,
            vec![RoutingViolation::SizeMismatch {
                nodes: (g.num_nodes(), g.num_nodes() + 1),
                edges: (g.num_edges(), g.num_edges()),
            }]
        );
        let r = Routing::new(g.num_nodes(), 0);
        assert!(matches!(
            r.validate(&g).as_slice(),
            [RoutingViolation::SizeMismatch { .. }]
        ));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn rejects_self_flow() {
        let g = diamond();
        let mut r = Routing::new(g.num_nodes(), g.num_edges());
        r.set_flow(1, 1, vec![0.0; g.num_edges()]);
    }
}
