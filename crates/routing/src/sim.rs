//! Flow propagation: computing link loads and the maximum link
//! utilisation (paper Eq. 1) for a routing and a demand matrix.
//!
//! Each flow's demand is injected at its source and pushed through the
//! splitting ratios. Softmin routings are DAGs per flow, so a
//! topological sweep suffices; for arbitrary routings a damped
//! fixed-point iteration is used as a fallback and cyclic routings that
//! trap flow are reported as errors.

use std::fmt;

use gddr_net::algo::topological_order;
use gddr_net::{EdgeId, Graph, NodeId};
use gddr_traffic::DemandMatrix;

use crate::routing::Routing;

/// Per-edge loads and utilisations for one demand matrix.
#[derive(Debug, Clone)]
pub struct UtilisationReport {
    /// Traffic volume per edge.
    pub loads: Vec<f64>,
    /// `loads[e] / capacity[e]`.
    pub utilisations: Vec<f64>,
    /// The maximum utilisation `U_max` (paper Eq. 1).
    pub u_max: f64,
}

impl UtilisationReport {
    /// Mean link utilisation — an alternative utility function the
    /// paper's further-work section (§IX-A) suggests exploring.
    pub fn mean_utilisation(&self) -> f64 {
        if self.utilisations.is_empty() {
            0.0
        } else {
            self.utilisations.iter().sum::<f64>() / self.utilisations.len() as f64
        }
    }

    /// The `q`-th utilisation percentile (`q` in `[0, 1]`), nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or there are no edges.
    pub fn percentile_utilisation(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        assert!(!self.utilisations.is_empty(), "no edges to rank");
        let mut sorted = self.utilisations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("utilisations are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Number of links whose utilisation exceeds 1.0 (over-subscribed
    /// links experiencing loss).
    pub fn congested_links(&self) -> usize {
        self.utilisations.iter().filter(|&&u| u > 1.0).count()
    }
}

/// Flow-simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A commodity has demand but no splitting ratios in the routing.
    MissingFlow { src: usize, dst: usize },
    /// Traffic did not fully reach the destination (lost at a node with
    /// no outgoing ratios, or trapped in a cycle).
    FlowLost {
        src: usize,
        dst: usize,
        delivered_fraction: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingFlow { src, dst } => {
                write!(f, "no routing for demanded flow ({src} -> {dst})")
            }
            SimError::FlowLost {
                src,
                dst,
                delivered_fraction,
            } => write!(
                f,
                "flow ({src} -> {dst}) delivered only {:.1}% of its demand",
                delivered_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for SimError {}

const EPS: f64 = 1e-9;
/// Tolerated relative loss before a flow is reported as lost.
const LOSS_TOL: f64 = 1e-6;

/// Propagates one unit-demand flow and adds its loads into `loads`.
/// Returns the fraction delivered to the destination.
fn propagate_flow(
    graph: &Graph,
    ratios: &[f64],
    s: usize,
    t: usize,
    demand: f64,
    loads: &mut [f64],
) -> f64 {
    let n = graph.num_nodes();
    let mask: Vec<bool> = ratios.iter().map(|&r| r > EPS).collect();
    let mut inflow = vec![0.0; n];
    inflow[s] = demand;
    if let Some(order) = topological_order(graph, &mask) {
        for v in order {
            let amount = inflow[v.0];
            if amount <= EPS || v.0 == t {
                continue;
            }
            for &e in graph.out_edges(v) {
                let r = ratios[e.0];
                if r > EPS {
                    let pushed = amount * r;
                    loads[e.0] += pushed;
                    inflow[graph.dst(e).0] += pushed;
                }
            }
        }
        inflow[t] / demand
    } else {
        // Cyclic routing: fixed-point iteration on the flow equations.
        // x = b + Tᵀx converges iff every cycle leaks; otherwise we
        // report the delivered fraction after the iteration cap.
        let mut arriving = vec![0.0; n];
        arriving[s] = demand;
        let mut delivered = 0.0;
        let mut edge_loads = vec![0.0; graph.num_edges()];
        for _ in 0..200 {
            let mut next = vec![0.0; n];
            let mut moved = 0.0;
            for (v, &amount) in arriving.iter().enumerate() {
                if amount <= EPS {
                    continue;
                }
                if v == t {
                    delivered += amount;
                    continue;
                }
                for &e in graph.out_edges(NodeId(v)) {
                    let r = ratios[e.0];
                    if r > EPS {
                        let pushed = amount * r;
                        edge_loads[e.0] += pushed;
                        next[graph.dst(e).0] += pushed;
                        moved += pushed;
                    }
                }
            }
            arriving = next;
            if moved <= demand * 1e-9 {
                break;
            }
        }
        for (l, el) in loads.iter_mut().zip(&edge_loads) {
            *l += el;
        }
        delivered / demand
    }
}

/// Computes per-edge loads, utilisations and `U_max` for `routing`
/// under `dm`.
///
/// # Errors
///
/// Returns [`SimError::MissingFlow`] if a demanded commodity has no
/// ratios and [`SimError::FlowLost`] if more than a fraction `1e-6` of
/// any flow fails to reach its destination.
///
/// # Panics
///
/// Panics if graph, routing and demand-matrix dimensions disagree.
pub fn max_link_utilisation(
    graph: &Graph,
    routing: &Routing,
    dm: &DemandMatrix,
) -> Result<UtilisationReport, SimError> {
    assert_eq!(graph.num_nodes(), dm.num_nodes());
    assert_eq!(graph.num_nodes(), routing.num_nodes());
    assert_eq!(graph.num_edges(), routing.num_edges());
    let mut loads = vec![0.0; graph.num_edges()];
    for (s, t, d) in dm.commodities() {
        let Some(ratios) = routing.flow(s, t) else {
            return Err(SimError::MissingFlow { src: s, dst: t });
        };
        let delivered = propagate_flow(graph, ratios, s, t, d, &mut loads);
        if (1.0 - delivered).abs() > LOSS_TOL {
            return Err(SimError::FlowLost {
                src: s,
                dst: t,
                delivered_fraction: delivered,
            });
        }
    }
    let utilisations: Vec<f64> = loads
        .iter()
        .enumerate()
        .map(|(e, &l)| l / graph.capacity(EdgeId(e)))
        .collect();
    let u_max = utilisations.iter().copied().fold(0.0, f64::max);
    Ok(UtilisationReport {
        loads,
        utilisations,
        u_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmin::{softmin_routing, SoftminConfig};
    use gddr_net::topology::{from_links, zoo};
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;
    use gddr_traffic::gen::{bimodal, BimodalParams};

    fn diamond() -> Graph {
        from_links("diamond", 4, &[(0, 1), (1, 3), (0, 2), (2, 3)], 10.0)
    }

    #[test]
    fn single_path_load() {
        let g = diamond();
        let mut r = Routing::new(4, g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e13 = g.edge_between(NodeId(1), NodeId(3)).unwrap();
        ratios[e01.0] = 1.0;
        ratios[e13.0] = 1.0;
        r.set_flow(0, 3, ratios);
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 6.0);
        let rep = max_link_utilisation(&g, &r, &dm).unwrap();
        assert_eq!(rep.loads[e01.0], 6.0);
        assert_eq!(rep.loads[e13.0], 6.0);
        assert!((rep.u_max - 0.6).abs() < 1e-12);
    }

    #[test]
    fn split_load_halves_utilisation() {
        let g = diamond();
        let mut r = Routing::new(4, g.num_edges());
        let mut ratios = vec![0.0; g.num_edges()];
        for (a, b) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            let e = g.edge_between(NodeId(a), NodeId(b)).unwrap();
            ratios[e.0] = if a == 0 { 0.5 } else { 1.0 };
        }
        r.set_flow(0, 3, ratios);
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 10.0);
        let rep = max_link_utilisation(&g, &r, &dm).unwrap();
        assert!((rep.u_max - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_flow_is_reported() {
        let g = diamond();
        let r = Routing::new(4, g.num_edges());
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 1.0);
        assert!(matches!(
            max_link_utilisation(&g, &r, &dm),
            Err(SimError::MissingFlow { src: 0, dst: 3 })
        ));
    }

    #[test]
    fn lost_flow_is_reported() {
        let g = diamond();
        let mut r = Routing::new(4, g.num_edges());
        // Node 1 has no outgoing ratio: flow dies there.
        let mut ratios = vec![0.0; g.num_edges()];
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        ratios[e01.0] = 1.0;
        r.set_flow(0, 3, ratios);
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 1.0);
        assert!(matches!(
            max_link_utilisation(&g, &r, &dm),
            Err(SimError::FlowLost { .. })
        ));
    }

    #[test]
    fn cyclic_routing_that_leaks_converges() {
        // 0 -> 1 with a 2-cycle 1 <-> 2 leaking 50% to 3 each visit.
        let g = from_links("cyc", 4, &[(0, 1), (1, 2), (2, 1), (1, 3)], 10.0);
        let mut ratios = vec![0.0; g.num_edges()];
        ratios[g.edge_between(NodeId(0), NodeId(1)).unwrap().0] = 1.0;
        ratios[g.edge_between(NodeId(1), NodeId(2)).unwrap().0] = 0.5;
        ratios[g.edge_between(NodeId(1), NodeId(3)).unwrap().0] = 0.5;
        ratios[g.edge_between(NodeId(2), NodeId(1)).unwrap().0] = 1.0;
        let mut r = Routing::new(4, g.num_edges());
        r.set_flow(0, 3, ratios);
        let mut dm = DemandMatrix::zeros(4);
        dm.set(0, 3, 8.0);
        let rep = max_link_utilisation(&g, &r, &dm).unwrap();
        // The cycle amplifies load on 1->2: total = 8 * (0.5 + 0.25 + ...) = 8.
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert!(
            (rep.loads[e12.0] - 8.0).abs() < 1e-3,
            "{}",
            rep.loads[e12.0]
        );
    }

    #[test]
    fn softmin_routing_end_to_end_on_abilene() {
        let g = zoo::abilene();
        let mut rng = StdRng::seed_from_u64(0);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let w = vec![1.0; g.num_edges()];
        let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let rep = max_link_utilisation(&g, &r, &dm).unwrap();
        assert!(rep.u_max > 0.0 && rep.u_max.is_finite());
        // Total load ≥ total demand (each unit traverses ≥ 1 edge).
        assert!(rep.loads.iter().sum::<f64>() >= dm.total());
    }

    #[test]
    fn report_statistics() {
        let rep = UtilisationReport {
            loads: vec![1.0, 2.0, 3.0, 12.0],
            utilisations: vec![0.1, 0.2, 0.3, 1.2],
            u_max: 1.2,
        };
        assert!((rep.mean_utilisation() - 0.45).abs() < 1e-12);
        assert_eq!(rep.congested_links(), 1);
        assert_eq!(rep.percentile_utilisation(0.5), 0.2);
        assert_eq!(rep.percentile_utilisation(1.0), 1.2);
        assert_eq!(rep.percentile_utilisation(0.0), 0.1);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let rep = UtilisationReport {
            loads: vec![1.0],
            utilisations: vec![0.1],
            u_max: 0.1,
        };
        rep.percentile_utilisation(1.5);
    }

    #[test]
    fn utilisation_is_linear_in_demand() {
        let g = zoo::cesnet();
        let mut rng = StdRng::seed_from_u64(1);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let w = vec![1.0; g.num_edges()];
        let r = softmin_routing(&g, &w, &SoftminConfig::default()).unwrap();
        let u1 = max_link_utilisation(&g, &r, &dm).unwrap().u_max;
        let u3 = max_link_utilisation(&g, &r, &dm.scaled(3.0)).unwrap().u_max;
        assert!((u3 - 3.0 * u1).abs() < 1e-9);
    }
}
