//! Graph feature containers and the encode-process-decode composition
//! (paper Fig. 5).

use gddr_rng::Rng;

use gddr_net::Graph;
use gddr_nn::layers::{Activation, LayerNorm, Mlp};
use gddr_nn::{Matrix, ParamStore, Tape};

use crate::batch::GraphBatch;
use crate::block::{GnBlock, GnBlockConfig, GraphVars};

/// Static connectivity of a graph in GNN form: per-edge sender and
/// receiver node indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStructure {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// `senders[e]` is the source node of edge `e`.
    pub senders: Vec<usize>,
    /// `receivers[e]` is the destination node of edge `e`.
    pub receivers: Vec<usize>,
}

impl GraphStructure {
    /// Extracts the structure of a [`gddr_net::Graph`]; edge order
    /// follows the graph's dense edge ids, which is what the policies
    /// rely on to map GNN edge outputs back to routing weights.
    pub fn from_graph(graph: &Graph) -> Self {
        GraphStructure {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            senders: graph.edges().map(|e| graph.src(e).0).collect(),
            receivers: graph.edges().map(|e| graph.dst(e).0).collect(),
        }
    }
}

/// Concrete input features for one graph.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// n×d_node input features.
    pub nodes: Matrix,
    /// m×d_edge input features.
    pub edges: Matrix,
    /// 1×d_global input features.
    pub globals: Matrix,
}

/// Configuration of an [`EncodeProcessDecode`] network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpdConfig {
    /// Input node-feature width (2·history for GDDR, Eq. 4).
    pub node_in: usize,
    /// Input edge-feature width (0-padded to 1, or 3 for the iterative
    /// policy, Eq. 6).
    pub edge_in: usize,
    /// Input global-feature width.
    pub global_in: usize,
    /// Decoded node output width.
    pub node_out: usize,
    /// Decoded edge output width (1 for GDDR: the edge weight, Eq. 5).
    pub edge_out: usize,
    /// Decoded global output width (Eq. 7 for the iterative policy).
    pub global_out: usize,
    /// Latent feature width used between encoder, core and decoder.
    pub latent: usize,
    /// Hidden width of every MLP.
    pub hidden: usize,
    /// Number of message-passing steps of the core block.
    pub message_steps: usize,
    /// Apply layer normalisation to the latents after every core step
    /// (graph_nets-style stabiliser; off in the paper's base setup).
    pub layer_norm: bool,
}

/// The encode-process-decode model of the paper's Fig. 5: an
/// independent encoder lifts raw attributes to a latent size, a full GN
/// block runs several message-passing steps (each step re-consuming the
/// encoded input via concatenation — the "extra loop" in the figure),
/// and an independent decoder maps the final latents to output sizes.
#[derive(Debug, Clone)]
pub struct EncodeProcessDecode {
    enc_nodes: Mlp,
    enc_edges: Mlp,
    enc_globals: Mlp,
    core: GnBlock,
    dec_nodes: Mlp,
    dec_edges: Mlp,
    dec_globals: Mlp,
    norms: Option<(LayerNorm, LayerNorm, LayerNorm)>,
    config: EpdConfig,
}

impl EncodeProcessDecode {
    /// Registers all parameters in `store`.
    ///
    /// # Panics
    ///
    /// Panics if `message_steps == 0` or `latent == 0`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        config: &EpdConfig,
        rng: &mut R,
    ) -> Self {
        assert!(config.message_steps >= 1, "need at least one core step");
        assert!(config.latent >= 1, "latent width must be positive");
        let l = config.latent;
        let core_cfg = GnBlockConfig {
            // Core consumes [encoded ‖ current] for nodes/edges/globals.
            edge_in: 2 * l,
            node_in: 2 * l,
            global_in: 2 * l,
            edge_out: l,
            node_out: l,
            global_out: l,
            hidden: config.hidden,
        };
        EncodeProcessDecode {
            enc_nodes: Mlp::new(
                store,
                &format!("{name}.enc_nodes"),
                &[config.node_in, config.hidden, l],
                Activation::Relu,
                rng,
            ),
            enc_edges: Mlp::new(
                store,
                &format!("{name}.enc_edges"),
                &[config.edge_in, config.hidden, l],
                Activation::Relu,
                rng,
            ),
            enc_globals: Mlp::new(
                store,
                &format!("{name}.enc_globals"),
                &[config.global_in, config.hidden, l],
                Activation::Relu,
                rng,
            ),
            core: GnBlock::new(store, &format!("{name}.core"), &core_cfg, rng),
            dec_nodes: Mlp::new(
                store,
                &format!("{name}.dec_nodes"),
                &[l, config.hidden, config.node_out],
                Activation::Relu,
                rng,
            ),
            dec_edges: Mlp::new(
                store,
                &format!("{name}.dec_edges"),
                &[l, config.hidden, config.edge_out],
                Activation::Relu,
                rng,
            ),
            dec_globals: Mlp::new(
                store,
                &format!("{name}.dec_globals"),
                &[l, config.hidden, config.global_out],
                Activation::Relu,
                rng,
            ),
            norms: config.layer_norm.then(|| {
                (
                    LayerNorm::new(store, &format!("{name}.ln_nodes"), l),
                    LayerNorm::new(store, &format!("{name}.ln_edges"), l),
                    LayerNorm::new(store, &format!("{name}.ln_globals"), l),
                )
            }),
            config: *config,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &EpdConfig {
        &self.config
    }

    /// Full forward pass on one graph.
    ///
    /// # Panics
    ///
    /// Panics if feature shapes disagree with the configuration or the
    /// structure.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        structure: &GraphStructure,
        features: &GraphFeatures,
    ) -> GraphVars {
        assert_eq!(
            features.nodes.shape(),
            (structure.num_nodes, self.config.node_in)
        );
        assert_eq!(
            features.edges.shape(),
            (structure.num_edges, self.config.edge_in)
        );
        assert_eq!(features.globals.shape(), (1, self.config.global_in));

        let node_in = tape.constant(features.nodes.clone());
        let edge_in = tape.constant(features.edges.clone());
        let global_in = tape.constant(features.globals.clone());

        let enc = GraphVars {
            nodes: self.enc_nodes.forward(tape, store, node_in),
            edges: self.enc_edges.forward(tape, store, edge_in),
            globals: self.enc_globals.forward(tape, store, global_in),
        };

        let mut state = enc;
        for _ in 0..self.config.message_steps {
            let core_in = GraphVars {
                nodes: tape.concat_cols(&[enc.nodes, state.nodes]),
                edges: tape.concat_cols(&[enc.edges, state.edges]),
                globals: tape.concat_cols(&[enc.globals, state.globals]),
            };
            state = self.core.forward(tape, store, structure, core_in);
            if let Some((ln_n, ln_e, ln_g)) = &self.norms {
                state = GraphVars {
                    nodes: ln_n.forward(tape, store, state.nodes),
                    edges: ln_e.forward(tape, store, state.edges),
                    globals: ln_g.forward(tape, store, state.globals),
                };
            }
        }

        GraphVars {
            nodes: self.dec_nodes.forward(tape, store, state.nodes),
            edges: self.dec_edges.forward(tape, store, state.edges),
            globals: self.dec_globals.forward(tape, store, state.globals),
        }
    }

    /// Full forward pass over a block-diagonal [`GraphBatch`] —
    /// `features` must be in batch form ([`GraphBatch::batch_features`])
    /// with `num_graphs×global_in` globals. Encoders, decoders and
    /// layer norms are row-wise and the core delegates to
    /// [`GnBlock::forward_batched`], so unbatching the output is
    /// bit-identical to per-graph [`EncodeProcessDecode::forward`].
    ///
    /// # Panics
    ///
    /// Panics if feature shapes disagree with the configuration or the
    /// batch.
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &GraphBatch,
        features: &GraphFeatures,
    ) -> GraphVars {
        assert_eq!(
            features.nodes.shape(),
            (batch.total_nodes(), self.config.node_in)
        );
        assert_eq!(
            features.edges.shape(),
            (batch.total_edges(), self.config.edge_in)
        );
        assert_eq!(
            features.globals.shape(),
            (batch.num_graphs, self.config.global_in)
        );

        let node_in = tape.constant(features.nodes.clone());
        let edge_in = tape.constant(features.edges.clone());
        let global_in = tape.constant(features.globals.clone());

        let enc = GraphVars {
            nodes: self.enc_nodes.forward(tape, store, node_in),
            edges: self.enc_edges.forward(tape, store, edge_in),
            globals: self.enc_globals.forward(tape, store, global_in),
        };

        let mut state = enc;
        for _ in 0..self.config.message_steps {
            let core_in = GraphVars {
                nodes: tape.concat_cols(&[enc.nodes, state.nodes]),
                edges: tape.concat_cols(&[enc.edges, state.edges]),
                globals: tape.concat_cols(&[enc.globals, state.globals]),
            };
            state = self.core.forward_batched(tape, store, batch, core_in);
            if let Some((ln_n, ln_e, ln_g)) = &self.norms {
                state = GraphVars {
                    nodes: ln_n.forward(tape, store, state.nodes),
                    edges: ln_e.forward(tape, store, state.edges),
                    globals: ln_g.forward(tape, store, state.globals),
                };
            }
        }

        GraphVars {
            nodes: self.dec_nodes.forward(tape, store, state.nodes),
            edges: self.dec_edges.forward(tape, store, state.edges),
            globals: self.dec_globals.forward(tape, store, state.globals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    fn config() -> EpdConfig {
        EpdConfig {
            node_in: 2,
            edge_in: 1,
            global_in: 1,
            node_out: 3,
            edge_out: 1,
            global_out: 2,
            latent: 8,
            hidden: 16,
            message_steps: 3,
            layer_norm: false,
        }
    }

    fn features(s: &GraphStructure, cfg: &EpdConfig) -> GraphFeatures {
        GraphFeatures {
            nodes: Matrix::from_fn(s.num_nodes, cfg.node_in, |r, c| {
                ((r + 1) * (c + 1)) as f64 * 0.01
            }),
            edges: Matrix::from_fn(s.num_edges, cfg.edge_in, |r, _| r as f64 * 0.01),
            globals: Matrix::zeros(1, cfg.global_in),
        }
    }

    #[test]
    fn forward_shapes() {
        let g = zoo::abilene();
        let s = GraphStructure::from_graph(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = config();
        let net = EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);
        let mut tape = Tape::new();
        let out = net.forward(&mut tape, &store, &s, &features(&s, &cfg));
        assert_eq!(tape.value(out.nodes).shape(), (s.num_nodes, 3));
        assert_eq!(tape.value(out.edges).shape(), (s.num_edges, 1));
        assert_eq!(tape.value(out.globals).shape(), (1, 2));
    }

    #[test]
    fn same_params_generalise_across_graphs() {
        // The core property the paper relies on: one parameter set runs
        // on any topology.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = config();
        let net = EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);
        for g in [zoo::cesnet(), zoo::abilene(), zoo::geant()] {
            let s = GraphStructure::from_graph(&g);
            let mut tape = Tape::new();
            let out = net.forward(&mut tape, &store, &s, &features(&s, &cfg));
            assert_eq!(tape.value(out.edges).shape(), (g.num_edges(), 1));
            assert!(tape.value(out.edges).is_finite());
        }
    }

    #[test]
    fn param_count_is_independent_of_graph_size() {
        // (Discussion §IX: "the parameter count for GNNs remains fixed
        // with larger graphs".)
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = EncodeProcessDecode::new(&mut store, "epd", &config(), &mut rng);
        let count = store.num_scalars();
        assert!(count > 0);
        // No graph was involved in construction at all; nothing to vary.
        // Re-register with another seed to ensure deterministic layout.
        let mut store2 = ParamStore::new();
        let mut rng2 = StdRng::seed_from_u64(3);
        let _ = EncodeProcessDecode::new(&mut store2, "epd", &config(), &mut rng2);
        assert_eq!(store2.num_scalars(), count);
    }

    #[test]
    fn message_steps_extend_receptive_field() {
        // With one step, information from a node reaches only adjacent
        // edges; with enough steps it reaches the farthest edge. Probe
        // by differencing outputs under an input perturbation.
        let g = zoo::abilene();
        let s = GraphStructure::from_graph(&g);
        let far_node = 0usize; // Seattle
                               // Find an edge maximally far from Seattle (NY-DC side).
        let probe_edge = s
            .senders
            .iter()
            .position(|&x| x == 9 || x == 10)
            .expect("east-coast edge exists");

        for (steps, expect_reach) in [(1, false), (6, true)] {
            let cfg = EpdConfig {
                message_steps: steps,
                ..config()
            };
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(4);
            let net = EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);
            let base = features(&s, &cfg);
            let mut perturbed = base.clone();
            perturbed
                .nodes
                .set(far_node, 0, base.nodes.get(far_node, 0) + 1.0);
            let mut t1 = Tape::new();
            let o1 = net.forward(&mut t1, &store, &s, &base);
            let mut t2 = Tape::new();
            let o2 = net.forward(&mut t2, &store, &s, &perturbed);
            let d = (t1.value(o1.edges).get(probe_edge, 0) - t2.value(o2.edges).get(probe_edge, 0))
                .abs();
            if expect_reach {
                assert!(d > 1e-9, "{steps} steps should reach the probe edge");
            } else {
                assert!(d < 1e-9, "1 step must not reach a distant edge (got {d})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core step")]
    fn rejects_zero_steps() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = EpdConfig {
            message_steps: 0,
            ..config()
        };
        EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);
    }
}
