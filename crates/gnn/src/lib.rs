//! # gddr-gnn
//!
//! Graph network blocks in the formulation of Battaglia et al.
//! ("Relational inductive biases, deep learning, and graph networks"),
//! the GNN model the paper builds its policies on (§IV, §VII-A).
//!
//! A graph carries a global attribute vector `u`, per-vertex attribute
//! vectors `V`, and per-edge attribute vectors `E` with sender/receiver
//! indices. A full GN block applies three learned update functions
//! (φᵉ, φᵛ, φᵘ — all MLPs here, as in the paper) interleaved with three
//! sum-pooling aggregations ρ (the paper uses
//! `tf.unsorted_segment_sum`; here [`gddr_nn::Tape::segment_sum`]).
//!
//! [`EncodeProcessDecode`] composes an independent encoder, a number of
//! message-passing steps of a full [`GnBlock`] core (with the
//! encoded-input skip connection of the paper's Fig. 5), and an
//! independent decoder — exactly the paper's policy architecture.
//!
//! # Example
//!
//! ```
//! use gddr_gnn::{EncodeProcessDecode, EpdConfig, GraphStructure, GraphFeatures};
//! use gddr_net::topology::zoo;
//! use gddr_nn::{Matrix, ParamStore, Tape};
//! use gddr_rng::SeedableRng;
//!
//! let g = zoo::abilene();
//! let structure = GraphStructure::from_graph(&g);
//! let mut store = ParamStore::new();
//! let mut rng = gddr_rng::rngs::StdRng::seed_from_u64(0);
//! let config = EpdConfig {
//!     node_in: 2, edge_in: 1, global_in: 1,
//!     node_out: 2, edge_out: 1, global_out: 2,
//!     latent: 8, hidden: 16, message_steps: 2, layer_norm: false,
//! };
//! let net = EncodeProcessDecode::new(&mut store, "epd", &config, &mut rng);
//! let mut tape = Tape::new();
//! let feats = GraphFeatures {
//!     nodes: Matrix::zeros(structure.num_nodes, 2),
//!     edges: Matrix::zeros(structure.num_edges, 1),
//!     globals: Matrix::zeros(1, 1),
//! };
//! let out = net.forward(&mut tape, &store, &structure, &feats);
//! assert_eq!(tape.value(out.edges).shape(), (structure.num_edges, 1));
//! assert_eq!(tape.value(out.globals).shape(), (1, 2));
//! ```

pub mod batch;
pub mod block;
pub mod graphs;

pub use batch::GraphBatch;
pub use block::{GnBlock, GnBlockConfig, GraphVars};
pub use graphs::{EncodeProcessDecode, EpdConfig, GraphFeatures, GraphStructure};
