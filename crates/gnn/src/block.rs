//! The full GN block of Battaglia et al.
//!
//! Update order (their Algorithm 1):
//!
//! 1. φᵉ updates every edge from `[eₖ, v_sender, v_receiver, u]`,
//! 2. ρᵉ→ᵛ sum-pools updated incoming edges per receiver vertex,
//! 3. φᵛ updates every vertex from `[ēᵢ, vᵢ, u]`,
//! 4. ρᵉ→ᵘ and ρᵛ→ᵘ sum-pool all edges and vertices,
//! 5. φᵘ updates the global from `[ē, v̄, u]`.
//!
//! All three φ functions are MLPs ([`gddr_nn::layers::Mlp`]), matching
//! the paper ("we implement all of these functions as MLPs"), and all
//! ρ are sums (`tf.unsorted_segment_sum` in the paper's stack).

use gddr_rng::Rng;

use gddr_nn::layers::{Activation, Mlp};
use gddr_nn::{ParamStore, Tape, Var};

use crate::batch::GraphBatch;
use crate::graphs::GraphStructure;

/// Tape variables holding a graph's node/edge/global features.
#[derive(Debug, Clone, Copy)]
pub struct GraphVars {
    /// n×d_node features.
    pub nodes: Var,
    /// m×d_edge features.
    pub edges: Var,
    /// 1×d_global features.
    pub globals: Var,
}

/// Feature widths of a [`GnBlock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnBlockConfig {
    /// Input edge-feature width.
    pub edge_in: usize,
    /// Input node-feature width.
    pub node_in: usize,
    /// Input global-feature width.
    pub global_in: usize,
    /// Output edge-feature width.
    pub edge_out: usize,
    /// Output node-feature width.
    pub node_out: usize,
    /// Output global-feature width.
    pub global_out: usize,
    /// Hidden width of the three update MLPs.
    pub hidden: usize,
}

/// A full graph-network block with learned edge, node and global update
/// functions.
#[derive(Debug, Clone)]
pub struct GnBlock {
    phi_e: Mlp,
    phi_v: Mlp,
    phi_u: Mlp,
    config: GnBlockConfig,
}

impl GnBlock {
    /// Registers the block's parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        config: &GnBlockConfig,
        rng: &mut R,
    ) -> Self {
        let phi_e_in = config.edge_in + 2 * config.node_in + config.global_in;
        let phi_v_in = config.edge_out + config.node_in + config.global_in;
        let phi_u_in = config.edge_out + config.node_out + config.global_in;
        GnBlock {
            phi_e: Mlp::new(
                store,
                &format!("{name}.phi_e"),
                &[phi_e_in, config.hidden, config.edge_out],
                Activation::Relu,
                rng,
            ),
            phi_v: Mlp::new(
                store,
                &format!("{name}.phi_v"),
                &[phi_v_in, config.hidden, config.node_out],
                Activation::Relu,
                rng,
            ),
            phi_u: Mlp::new(
                store,
                &format!("{name}.phi_u"),
                &[phi_u_in, config.hidden, config.global_out],
                Activation::Relu,
                rng,
            ),
            config: *config,
        }
    }

    /// The block's configuration.
    pub fn config(&self) -> &GnBlockConfig {
        &self.config
    }

    /// One full GN-block pass.
    ///
    /// # Panics
    ///
    /// Panics if the feature shapes do not match the configuration or
    /// the structure.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        structure: &GraphStructure,
        input: GraphVars,
    ) -> GraphVars {
        let _span = gddr_telemetry::span("gnn.block.forward");
        let n = structure.num_nodes;
        let m = structure.num_edges;
        assert_eq!(
            tape.value(input.nodes).shape(),
            (n, self.config.node_in),
            "node feature shape mismatch"
        );
        assert_eq!(
            tape.value(input.edges).shape(),
            (m, self.config.edge_in),
            "edge feature shape mismatch"
        );
        assert_eq!(
            tape.value(input.globals).shape(),
            (1, self.config.global_in),
            "global feature shape mismatch"
        );

        // 1. Edge update.
        let sender_feats = tape.gather_rows(input.nodes, &structure.senders);
        let receiver_feats = tape.gather_rows(input.nodes, &structure.receivers);
        let global_per_edge = tape.broadcast_rows(input.globals, m);
        let phi_e_in =
            tape.concat_cols(&[input.edges, sender_feats, receiver_feats, global_per_edge]);
        let edges_out = self.phi_e.forward(tape, store, phi_e_in);

        // 2. Aggregate incoming edges per receiver, 3. node update.
        let agg_in = tape.segment_sum(edges_out, &structure.receivers, n);
        let global_per_node = tape.broadcast_rows(input.globals, n);
        let phi_v_in = tape.concat_cols(&[agg_in, input.nodes, global_per_node]);
        let nodes_out = self.phi_v.forward(tape, store, phi_v_in);

        // 4. Graph-level aggregations, 5. global update.
        let agg_e = tape.sum_rows(edges_out);
        let agg_v = tape.sum_rows(nodes_out);
        let phi_u_in = tape.concat_cols(&[agg_e, agg_v, input.globals]);
        let globals_out = self.phi_u.forward(tape, store, phi_u_in);

        GraphVars {
            nodes: nodes_out,
            edges: edges_out,
            globals: globals_out,
        }
    }

    /// One full GN-block pass over a block-diagonal [`GraphBatch`].
    ///
    /// Globals are `G×d_global` (one row per graph); per-edge/per-node
    /// global context is gathered via the batch's segment vectors and
    /// the graph-level pools are segment sums, so each graph's rows see
    /// exactly the operands (in the same accumulation order) that
    /// [`GnBlock::forward`] would give them solo — the batched result
    /// unbatches bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the feature shapes do not match the configuration or
    /// the batch.
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        batch: &GraphBatch,
        input: GraphVars,
    ) -> GraphVars {
        let _span = gddr_telemetry::span("gnn.block.forward");
        let structure = &batch.structure;
        let n = structure.num_nodes;
        let m = structure.num_edges;
        assert_eq!(
            tape.value(input.nodes).shape(),
            (n, self.config.node_in),
            "node feature shape mismatch"
        );
        assert_eq!(
            tape.value(input.edges).shape(),
            (m, self.config.edge_in),
            "edge feature shape mismatch"
        );
        assert_eq!(
            tape.value(input.globals).shape(),
            (batch.num_graphs, self.config.global_in),
            "global feature shape mismatch"
        );

        // 1. Edge update — each edge reads its own graph's global row.
        let sender_feats = tape.gather_rows(input.nodes, &structure.senders);
        let receiver_feats = tape.gather_rows(input.nodes, &structure.receivers);
        let global_per_edge = tape.gather_rows(input.globals, &batch.edge_segments);
        let phi_e_in =
            tape.concat_cols(&[input.edges, sender_feats, receiver_feats, global_per_edge]);
        let edges_out = self.phi_e.forward(tape, store, phi_e_in);

        // 2. Aggregate incoming edges per receiver, 3. node update.
        let agg_in = tape.segment_sum(edges_out, &structure.receivers, n);
        let global_per_node = tape.gather_rows(input.globals, &batch.node_segments);
        let phi_v_in = tape.concat_cols(&[agg_in, input.nodes, global_per_node]);
        let nodes_out = self.phi_v.forward(tape, store, phi_v_in);

        // 4. Per-graph aggregations, 5. global update. Rows of each
        // graph are contiguous, so segment_sum accumulates them in the
        // same order sum_rows would solo.
        let agg_e = tape.segment_sum(edges_out, &batch.edge_segments, batch.num_graphs);
        let agg_v = tape.segment_sum(nodes_out, &batch.node_segments, batch.num_graphs);
        let phi_u_in = tape.concat_cols(&[agg_e, agg_v, input.globals]);
        let globals_out = self.phi_u.forward(tape, store, phi_u_in);

        GraphVars {
            nodes: nodes_out,
            edges: edges_out,
            globals: globals_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_net::topology::zoo;
    use gddr_nn::Matrix;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    fn fixture() -> (GraphStructure, ParamStore, GnBlock) {
        let g = zoo::cesnet();
        let structure = GraphStructure::from_graph(&g);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let config = GnBlockConfig {
            edge_in: 3,
            node_in: 2,
            global_in: 1,
            edge_out: 4,
            node_out: 5,
            global_out: 2,
            hidden: 8,
        };
        let block = GnBlock::new(&mut store, "gn", &config, &mut rng);
        (structure, store, block)
    }

    fn inputs(tape: &mut Tape, s: &GraphStructure) -> GraphVars {
        let nodes = tape.constant(Matrix::from_fn(s.num_nodes, 2, |r, c| {
            (r * 2 + c) as f64 * 0.1
        }));
        let edges = tape.constant(Matrix::from_fn(s.num_edges, 3, |r, c| {
            (r + c) as f64 * 0.05
        }));
        let globals = tape.constant(Matrix::row_vector(vec![0.3]));
        GraphVars {
            nodes,
            edges,
            globals,
        }
    }

    #[test]
    fn output_shapes() {
        let (s, store, block) = fixture();
        let mut tape = Tape::new();
        let inp = inputs(&mut tape, &s);
        let out = block.forward(&mut tape, &store, &s, inp);
        assert_eq!(tape.value(out.nodes).shape(), (s.num_nodes, 5));
        assert_eq!(tape.value(out.edges).shape(), (s.num_edges, 4));
        assert_eq!(tape.value(out.globals).shape(), (1, 2));
    }

    #[test]
    fn gradient_flows_to_all_phi_functions() {
        let (s, mut store, block) = fixture();
        let mut tape = Tape::new();
        let inp = inputs(&mut tape, &s);
        let out = block.forward(&mut tape, &store, &s, inp);
        let ge = tape.sum_all(out.edges);
        let gn = tape.sum_all(out.nodes);
        let gu = tape.sum_all(out.globals);
        let t1 = tape.add(ge, gn);
        let loss = tape.add(t1, gu);
        store.zero_grads();
        tape.backward(loss, &mut store);
        // Every parameter should receive some gradient (ReLU may zero a
        // few rows, but not entire weight matrices here).
        let nonzero = store
            .iter()
            .filter(|(id, _, _)| store.grad(*id).norm() > 0.0)
            .count();
        assert!(
            nonzero >= store.len() - 2,
            "only {nonzero}/{} params got gradient",
            store.len()
        );
    }

    #[test]
    fn permutation_equivariance_of_edge_update() {
        // Relabelling edges permutes edge outputs identically.
        let (s, store, block) = fixture();
        let mut tape = Tape::new();
        let inp = inputs(&mut tape, &s);
        let out = block.forward(&mut tape, &store, &s, inp);
        let edges_a = tape.value(out.edges).clone();

        // Build a permuted structure: swap edges 0 and 1.
        let mut s2 = s.clone();
        s2.senders.swap(0, 1);
        s2.receivers.swap(0, 1);
        let mut tape2 = Tape::new();
        let nodes = tape2.constant(Matrix::from_fn(s.num_nodes, 2, |r, c| {
            (r * 2 + c) as f64 * 0.1
        }));
        let mut em = Matrix::from_fn(s.num_edges, 3, |r, c| (r + c) as f64 * 0.05);
        for c in 0..3 {
            let tmp = em.get(0, c);
            em.set(0, c, em.get(1, c));
            em.set(1, c, tmp);
        }
        let edges = tape2.constant(em);
        let globals = tape2.constant(Matrix::row_vector(vec![0.3]));
        let out2 = block.forward(
            &mut tape2,
            &store,
            &s2,
            GraphVars {
                nodes,
                edges,
                globals,
            },
        );
        let edges_b = tape2.value(out2.edges).clone();
        for c in 0..4 {
            assert!((edges_a.get(0, c) - edges_b.get(1, c)).abs() < 1e-12);
            assert!((edges_a.get(1, c) - edges_b.get(0, c)).abs() < 1e-12);
        }
        // Globals are permutation-invariant.
        let ga = tape.value(out.globals).clone();
        let gb = tape2.value(out2.globals).clone();
        for c in 0..2 {
            assert!((ga.get(0, c) - gb.get(0, c)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "node feature shape")]
    fn rejects_wrong_shapes() {
        let (s, store, block) = fixture();
        let mut tape = Tape::new();
        let nodes = tape.constant(Matrix::zeros(s.num_nodes, 7)); // wrong width
        let edges = tape.constant(Matrix::zeros(s.num_edges, 3));
        let globals = tape.constant(Matrix::zeros(1, 1));
        block.forward(
            &mut tape,
            &store,
            &s,
            GraphVars {
                nodes,
                edges,
                globals,
            },
        );
    }
}
