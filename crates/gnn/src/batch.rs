//! Block-diagonal graph batching (a `GraphsTuple`-style disjoint
//! union).
//!
//! Many independent graphs are packed into one big graph whose
//! adjacency is block-diagonal: node and edge feature matrices are
//! stacked vertically, sender/receiver indices are shifted by each
//! graph's node offset, and per-graph segment vectors record which
//! graph every node/edge belongs to. One forward pass over the batch
//! then computes exactly what per-graph forward passes would — since no
//! edge crosses a graph boundary, message passing cannot mix graphs,
//! and per-graph global pooling uses the segment vectors.
//!
//! **Bit-identity is the contract**: for every op on the batched path
//! (row-wise MLPs, gathers, segment sums accumulating in row order),
//! each graph's rows are processed in the same order with the same
//! operand values as in a solo forward, so unbatching the output
//! reproduces per-graph forwards down to the last bit. The serving
//! fleet's request coalescing relies on this — batched answers must be
//! indistinguishable from per-request answers.

use gddr_nn::Matrix;

use crate::graphs::{GraphFeatures, GraphStructure};

/// A disjoint union of graphs with per-graph bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphBatch {
    /// The merged block-diagonal structure (global node/edge indices).
    pub structure: GraphStructure,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
    /// `node_offsets[g]..node_offsets[g + 1]` are graph `g`'s node
    /// rows; `len == num_graphs + 1`.
    pub node_offsets: Vec<usize>,
    /// `edge_offsets[g]..edge_offsets[g + 1]` are graph `g`'s edge
    /// rows; `len == num_graphs + 1`.
    pub edge_offsets: Vec<usize>,
    /// `node_segments[v]` is the graph owning global node `v`.
    pub node_segments: Vec<usize>,
    /// `edge_segments[e]` is the graph owning global edge `e`.
    pub edge_segments: Vec<usize>,
}

impl GraphBatch {
    /// Builds the disjoint union of `structures`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `structures` is empty.
    pub fn new(structures: &[&GraphStructure]) -> Self {
        assert!(!structures.is_empty(), "batch needs at least one graph");
        let num_graphs = structures.len();
        let mut node_offsets = Vec::with_capacity(num_graphs + 1);
        let mut edge_offsets = Vec::with_capacity(num_graphs + 1);
        node_offsets.push(0);
        edge_offsets.push(0);
        let total_nodes: usize = structures.iter().map(|s| s.num_nodes).sum();
        let total_edges: usize = structures.iter().map(|s| s.num_edges).sum();
        let mut senders = Vec::with_capacity(total_edges);
        let mut receivers = Vec::with_capacity(total_edges);
        let mut node_segments = Vec::with_capacity(total_nodes);
        let mut edge_segments = Vec::with_capacity(total_edges);
        for (g, s) in structures.iter().enumerate() {
            let node_base = *node_offsets.last().expect("non-empty");
            senders.extend(s.senders.iter().map(|&v| v + node_base));
            receivers.extend(s.receivers.iter().map(|&v| v + node_base));
            node_segments.extend(std::iter::repeat_n(g, s.num_nodes));
            edge_segments.extend(std::iter::repeat_n(g, s.num_edges));
            node_offsets.push(node_base + s.num_nodes);
            edge_offsets.push(edge_offsets.last().expect("non-empty") + s.num_edges);
        }
        GraphBatch {
            structure: GraphStructure {
                num_nodes: total_nodes,
                num_edges: total_edges,
                senders,
                receivers,
            },
            num_graphs,
            node_offsets,
            edge_offsets,
            node_segments,
            edge_segments,
        }
    }

    /// Total nodes across the batch.
    pub fn total_nodes(&self) -> usize {
        self.structure.num_nodes
    }

    /// Total edges across the batch.
    pub fn total_edges(&self) -> usize {
        self.structure.num_edges
    }

    /// Stacks per-graph features into batch form: nodes and edges are
    /// concatenated vertically in batch order, and the `1×d_global`
    /// rows become one `num_graphs×d_global` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != num_graphs`, a block's row counts
    /// disagree with its structure, or feature widths differ between
    /// graphs.
    pub fn batch_features(&self, features: &[&GraphFeatures]) -> GraphFeatures {
        assert_eq!(features.len(), self.num_graphs, "one feature set per graph");
        for (g, f) in features.iter().enumerate() {
            let nodes = self.node_offsets[g + 1] - self.node_offsets[g];
            let edges = self.edge_offsets[g + 1] - self.edge_offsets[g];
            assert_eq!(f.nodes.rows(), nodes, "graph {g}: node row mismatch");
            assert_eq!(f.edges.rows(), edges, "graph {g}: edge row mismatch");
            assert_eq!(f.globals.rows(), 1, "graph {g}: globals must be one row");
        }
        let nodes: Vec<&Matrix> = features.iter().map(|f| &f.nodes).collect();
        let edges: Vec<&Matrix> = features.iter().map(|f| &f.edges).collect();
        let globals: Vec<&Matrix> = features.iter().map(|f| &f.globals).collect();
        GraphFeatures {
            nodes: Matrix::concat_rows(&nodes),
            edges: Matrix::concat_rows(&edges),
            globals: Matrix::concat_rows(&globals),
        }
    }

    /// Splits a batched `total_nodes×d` matrix back into per-graph
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if the row count disagrees with the batch.
    pub fn unbatch_nodes(&self, m: &Matrix) -> Vec<Matrix> {
        assert_eq!(m.rows(), self.total_nodes(), "node row mismatch");
        self.blocks(m, &self.node_offsets)
    }

    /// Splits a batched `total_edges×d` matrix back into per-graph
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if the row count disagrees with the batch.
    pub fn unbatch_edges(&self, m: &Matrix) -> Vec<Matrix> {
        assert_eq!(m.rows(), self.total_edges(), "edge row mismatch");
        self.blocks(m, &self.edge_offsets)
    }

    /// Splits a batched `num_graphs×d` globals matrix into per-graph
    /// `1×d` rows.
    ///
    /// # Panics
    ///
    /// Panics if the row count disagrees with the batch.
    pub fn unbatch_globals(&self, m: &Matrix) -> Vec<Matrix> {
        assert_eq!(m.rows(), self.num_graphs, "one globals row per graph");
        (0..self.num_graphs)
            .map(|g| m.slice_rows(g, g + 1))
            .collect()
    }

    fn blocks(&self, m: &Matrix, offsets: &[usize]) -> Vec<Matrix> {
        (0..self.num_graphs)
            .map(|g| m.slice_rows(offsets[g], offsets[g + 1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{EncodeProcessDecode, EpdConfig};
    use gddr_net::topology::zoo;
    use gddr_nn::{ParamStore, Tape};
    use gddr_rng::rngs::StdRng;
    use gddr_rng::{Rng, SeedableRng};

    fn config() -> EpdConfig {
        EpdConfig {
            node_in: 4,
            edge_in: 3,
            global_in: 1,
            node_out: 2,
            edge_out: 1,
            global_out: 2,
            latent: 8,
            hidden: 16,
            message_steps: 3,
            layer_norm: true,
        }
    }

    fn seeded_features(s: &GraphStructure, cfg: &EpdConfig, seed: u64) -> GraphFeatures {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill =
            |rows: usize, cols: usize| Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
        GraphFeatures {
            nodes: fill(s.num_nodes, cfg.node_in),
            edges: fill(s.num_edges, cfg.edge_in),
            globals: fill(1, cfg.global_in),
        }
    }

    #[test]
    fn disjoint_union_bookkeeping() {
        let a = GraphStructure::from_graph(&zoo::abilene());
        let b = GraphStructure::from_graph(&zoo::cesnet());
        let batch = GraphBatch::new(&[&a, &b]);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.total_nodes(), a.num_nodes + b.num_nodes);
        assert_eq!(batch.total_edges(), a.num_edges + b.num_edges);
        assert_eq!(
            batch.node_offsets,
            vec![0, a.num_nodes, a.num_nodes + b.num_nodes]
        );
        // No edge crosses a graph boundary.
        for e in 0..batch.total_edges() {
            let g = batch.edge_segments[e];
            let (lo, hi) = (batch.node_offsets[g], batch.node_offsets[g + 1]);
            assert!((lo..hi).contains(&batch.structure.senders[e]));
            assert!((lo..hi).contains(&batch.structure.receivers[e]));
        }
        // Graph b's first edge is a's edge shifted by a's node count.
        assert_eq!(
            batch.structure.senders[a.num_edges],
            b.senders[0] + a.num_nodes
        );
    }

    #[test]
    fn batch_unbatch_features_round_trip() {
        let cfg = config();
        let graphs = [zoo::abilene(), zoo::cesnet(), zoo::janet()];
        let structures: Vec<GraphStructure> =
            graphs.iter().map(GraphStructure::from_graph).collect();
        let refs: Vec<&GraphStructure> = structures.iter().collect();
        let batch = GraphBatch::new(&refs);
        let features: Vec<GraphFeatures> = structures
            .iter()
            .enumerate()
            .map(|(i, s)| seeded_features(s, &cfg, i as u64))
            .collect();
        let feat_refs: Vec<&GraphFeatures> = features.iter().collect();
        let packed = batch.batch_features(&feat_refs);
        assert_eq!(packed.globals.shape(), (3, cfg.global_in));
        let nodes = batch.unbatch_nodes(&packed.nodes);
        let edges = batch.unbatch_edges(&packed.edges);
        let globals = batch.unbatch_globals(&packed.globals);
        for (i, f) in features.iter().enumerate() {
            assert_eq!(nodes[i], f.nodes);
            assert_eq!(edges[i], f.edges);
            assert_eq!(globals[i], f.globals);
        }
    }

    /// The load-bearing property: a batched forward followed by
    /// unbatching is **bit-identical** to running each graph through
    /// `forward` alone — across ≥20 seeded (topology, features) pairs,
    /// mixed batch sizes, repeated topologies, and layer-norm on.
    #[test]
    fn batched_forward_is_bit_identical_to_solo_forwards() {
        let cfg = config();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(99);
        let net = EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);

        let zoo_graphs = zoo::all();
        let mut pairs: Vec<(GraphStructure, GraphFeatures)> = Vec::new();
        for seed in 0..24u64 {
            let g = &zoo_graphs[seed as usize % zoo_graphs.len()];
            let s = GraphStructure::from_graph(g);
            let f = seeded_features(&s, &cfg, 1000 + seed);
            pairs.push((s, f));
        }

        // Solo reference forwards.
        let mut solo: Vec<(Matrix, Matrix, Matrix)> = Vec::new();
        for (s, f) in &pairs {
            let mut tape = Tape::new();
            let out = net.forward(&mut tape, &store, s, f);
            solo.push((
                tape.value(out.nodes).clone(),
                tape.value(out.edges).clone(),
                tape.value(out.globals).clone(),
            ));
        }

        // Batched forwards over varying window sizes.
        for window in [1usize, 2, 5, 24] {
            let mut start = 0;
            while start < pairs.len() {
                let end = (start + window).min(pairs.len());
                let structures: Vec<&GraphStructure> =
                    pairs[start..end].iter().map(|(s, _)| s).collect();
                let feats: Vec<&GraphFeatures> = pairs[start..end].iter().map(|(_, f)| f).collect();
                let batch = GraphBatch::new(&structures);
                let packed = batch.batch_features(&feats);
                let mut tape = Tape::new();
                let out = net.forward_batched(&mut tape, &store, &batch, &packed);
                let nodes = batch.unbatch_nodes(tape.value(out.nodes));
                let edges = batch.unbatch_edges(tape.value(out.edges));
                let globals = batch.unbatch_globals(tape.value(out.globals));
                for (k, i) in (start..end).enumerate() {
                    // Bitwise equality, not tolerance: coalesced serving
                    // depends on batch membership being unobservable.
                    assert_eq!(
                        nodes[k], solo[i].0,
                        "nodes diverged (graph {i}, window {window})"
                    );
                    assert_eq!(
                        edges[k], solo[i].1,
                        "edges diverged (graph {i}, window {window})"
                    );
                    assert_eq!(
                        globals[k], solo[i].2,
                        "globals diverged (graph {i}, window {window})"
                    );
                }
                start = end;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_batch_is_rejected() {
        GraphBatch::new(&[]);
    }

    #[test]
    #[should_panic(expected = "node row mismatch")]
    fn mismatched_features_are_rejected() {
        let s = GraphStructure::from_graph(&zoo::abilene());
        let batch = GraphBatch::new(&[&s]);
        let cfg = config();
        let mut bad = seeded_features(&s, &cfg, 0);
        bad.nodes = Matrix::zeros(s.num_nodes + 1, cfg.node_in);
        batch.batch_features(&[&bad]);
    }
}
