//! The demand matrix (DM) type.

use std::fmt;

use gddr_ser::{FromJson, Json, JsonError, ToJson};

/// A traffic demand matrix `D ∈ R^{|V|×|V|}` where `D[s][t]` is the
/// demand from source `s` to destination `t` (paper §IV-A).
///
/// The diagonal is always zero: a node sends no traffic to itself.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMatrix {
    n: usize,
    data: Vec<f64>,
}

impl ToJson for DemandMatrix {
    fn to_json(&self) -> Json {
        Json::obj([("n", self.n.to_json()), ("data", self.data.to_json())])
    }
}

impl FromJson for DemandMatrix {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let n = usize::from_json(json.field("n")?)?;
        let data = Vec::<f64>::from_json(json.field("data")?)?;
        if data.len() != n * n {
            return Err(JsonError(format!(
                "demand matrix data length {} does not match {n}x{n}",
                data.len()
            )));
        }
        Ok(DemandMatrix { n, data })
    }
}

impl DemandMatrix {
    /// An all-zero demand matrix for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        DemandMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a DM from a closure over `(src, dst)`; the diagonal is
    /// forced to zero and negative demands are clamped to zero.
    ///
    /// # Non-finite values
    ///
    /// The clamp is `f(s, t).max(0.0)`, which has two deliberate edge
    /// behaviours:
    ///
    /// - **NaN is clamped to zero** ([`f64::max`] returns the other
    ///   operand when one side is NaN), so a NaN demand is
    ///   unconstructible in-tree — neither `from_fn` nor the asserting
    ///   [`DemandMatrix::set`] can produce one, and downstream code
    ///   (LP oracle, softmin routing, reward) may assume NaN-free
    ///   matrices.
    /// - **`f64::INFINITY` passes through.** An infinite demand is the
    ///   repo's convention for a deliberately malformed matrix: the
    ///   serving layer's admission validation rejects it with a typed
    ///   error, and the chaos scenarios use exactly this constructor
    ///   to build their `malformed` inputs. Producers of real traffic
    ///   (everything in [`crate::gen`], [`crate::sequence`] and
    ///   [`crate::scenario`]) only ever emit finite demands.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut dm = DemandMatrix::zeros(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    dm.data[s * n + t] = f(s, t).max(0.0);
                }
            }
        }
        dm
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.data[src * self.n + dst]
    }

    /// Sets the demand from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if out of range, on the diagonal, or for a negative /
    /// non-finite demand.
    pub fn set(&mut self, src: usize, dst: usize, demand: f64) {
        assert!(src < self.n && dst < self.n, "index out of range");
        assert_ne!(src, dst, "diagonal demands must stay zero");
        assert!(
            demand.is_finite() && demand >= 0.0,
            "demand must be finite and non-negative"
        );
        self.data[src * self.n + dst] = demand;
    }

    /// Total outgoing demand of node `v`: `Σ_j D[v][j]` (first element
    /// of the paper's Eq. 4 per-node aggregation).
    pub fn out_sum(&self, v: usize) -> f64 {
        (0..self.n).map(|j| self.get(v, j)).sum()
    }

    /// Total incoming demand of node `v`: `Σ_j D[j][v]` (second element
    /// of Eq. 4).
    pub fn in_sum(&self, v: usize) -> f64 {
        (0..self.n).map(|j| self.get(j, v)).sum()
    }

    /// Sum of all demands.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest single demand.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over the non-zero `(src, dst, demand)` commodities.
    pub fn commodities(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |t| {
                let d = self.get(s, t);
                (d > 0.0).then_some((s, t, d))
            })
        })
    }

    /// Row-major flattened view (length `n²`), as consumed by the MLP
    /// policy's observation.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Returns a copy scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        DemandMatrix {
            n: self.n,
            data: self.data.iter().map(|d| d * factor).collect(),
        }
    }

    /// A stable 64-bit fingerprint of the matrix contents, used to key
    /// the LP-oracle cache.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the bit patterns.
        let mut h: u64 = 0xcbf29ce484222325;
        h ^= self.n as u64;
        h = h.wrapping_mul(0x100000001b3);
        for d in &self.data {
            for b in d.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

impl fmt::Display for DemandMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DemandMatrix({} nodes, total {:.1})",
            self.n,
            self.total()
        )?;
        for s in 0..self.n {
            for t in 0..self.n {
                write!(f, "{:8.1} ", self.get(s, t))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut dm = DemandMatrix::zeros(3);
        assert_eq!(dm.total(), 0.0);
        dm.set(0, 1, 5.0);
        dm.set(1, 2, 3.0);
        assert_eq!(dm.get(0, 1), 5.0);
        assert_eq!(dm.total(), 8.0);
        assert_eq!(dm.max(), 5.0);
    }

    #[test]
    fn from_fn_zeroes_diagonal_and_clamps() {
        let dm = DemandMatrix::from_fn(3, |s, t| if s == 0 && t == 1 { -4.0 } else { 1.0 });
        assert_eq!(dm.get(0, 0), 0.0);
        assert_eq!(dm.get(1, 1), 0.0);
        assert_eq!(dm.get(0, 1), 0.0); // clamped
        assert_eq!(dm.get(2, 1), 1.0);
    }

    #[test]
    fn from_fn_clamps_nan_but_passes_infinity() {
        // The documented convention: NaN is unconstructible (clamped
        // to zero), while +inf passes through as the deliberate
        // malformed-matrix marker the chaos scenarios rely on.
        let dm = DemandMatrix::from_fn(3, |s, t| match (s, t) {
            (0, 1) => f64::NAN,
            (1, 2) => f64::INFINITY,
            (2, 0) => f64::NEG_INFINITY,
            _ => 1.0,
        });
        assert_eq!(dm.get(0, 1), 0.0, "NaN clamps to zero");
        assert_eq!(dm.get(1, 2), f64::INFINITY, "+inf passes through");
        assert_eq!(dm.get(2, 0), 0.0, "-inf clamps like any negative");
        assert!(dm.as_flat().iter().all(|d| !d.is_nan()));
    }

    #[test]
    fn in_out_sums() {
        let mut dm = DemandMatrix::zeros(3);
        dm.set(0, 1, 2.0);
        dm.set(0, 2, 3.0);
        dm.set(1, 0, 7.0);
        assert_eq!(dm.out_sum(0), 5.0);
        assert_eq!(dm.in_sum(0), 7.0);
        assert_eq!(dm.in_sum(2), 3.0);
    }

    #[test]
    fn commodities_iteration() {
        let mut dm = DemandMatrix::zeros(3);
        dm.set(0, 2, 4.0);
        dm.set(2, 1, 6.0);
        let c: Vec<_> = dm.commodities().collect();
        assert_eq!(c, vec![(0, 2, 4.0), (2, 1, 6.0)]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_diagonal_panics() {
        let mut dm = DemandMatrix::zeros(2);
        dm.set(1, 1, 1.0);
    }

    #[test]
    fn scaled_copy() {
        let mut dm = DemandMatrix::zeros(2);
        dm.set(0, 1, 2.0);
        let dm2 = dm.scaled(2.5);
        assert_eq!(dm2.get(0, 1), 5.0);
        assert_eq!(dm.get(0, 1), 2.0);
    }

    #[test]
    fn fingerprint_distinguishes_and_is_stable() {
        let mut a = DemandMatrix::zeros(3);
        a.set(0, 1, 1.0);
        let mut b = DemandMatrix::zeros(3);
        b.set(0, 1, 1.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set(0, 1, 1.0000001);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_contains_total() {
        let mut dm = DemandMatrix::zeros(2);
        dm.set(0, 1, 2.0);
        assert!(dm.to_string().contains("total 2.0"));
    }
}
