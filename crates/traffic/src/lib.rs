//! # gddr-traffic
//!
//! Traffic demand matrices and the synthetic demand generators used by
//! the paper (§VIII-B): bimodal demand matrices with occasional
//! "elephant flows", assembled into cyclical sequences that exhibit the
//! temporal regularity the DRL agent exploits.
//!
//! # Example
//!
//! ```
//! use gddr_traffic::{gen::BimodalParams, sequence::cyclical};
//! use gddr_rng::SeedableRng;
//!
//! let mut rng = gddr_rng::rngs::StdRng::seed_from_u64(0);
//! // A 60-step sequence cycling through 10 distinct bimodal DMs for a
//! // 12-node network — the paper's Fig. 6 workload.
//! let seq = cyclical(12, 10, 60, &BimodalParams::default(), &mut rng);
//! assert_eq!(seq.len(), 60);
//! assert_eq!(seq[0], seq[10]);
//! ```

pub mod demand;
pub mod gen;
pub mod scenario;
pub mod sequence;

pub use demand::DemandMatrix;
