//! Scenario-grade demand generators: traffic regimes with
//! within-episode dynamics.
//!
//! The base generators ([`crate::gen`], [`crate::sequence`]) model the
//! paper's stationary-with-regularity workloads. The scenario engine
//! needs regimes where the *shape* of demand changes mid-episode: flash
//! crowds ramping a hotspot destination, elephant/mice mixes with
//! churning mice, and diurnal cycles layered under a flash crowd. All
//! generators are pure functions of their RNG, so same-seed sequences
//! replay bit-identically.

use gddr_rng::Rng;

use crate::demand::DemandMatrix;
use crate::gen::gravity;

/// Shape of a flash-crowd spike window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowdParams {
    /// Number of hotspot destinations drawing the crowd.
    pub hotspots: usize,
    /// First step of the spike (ramp-up begins here).
    pub start: usize,
    /// Steps to ramp from nominal to peak (and back down after hold).
    pub ramp: usize,
    /// Steps held at peak.
    pub hold: usize,
    /// Peak multiplier on traffic towards the hotspots (`>= 1`).
    pub magnitude: f64,
}

impl Default for FlashCrowdParams {
    fn default() -> Self {
        FlashCrowdParams {
            hotspots: 2,
            start: 8,
            ramp: 4,
            hold: 8,
            magnitude: 6.0,
        }
    }
}

impl FlashCrowdParams {
    /// The hotspot multiplier at step `i`: 1 outside the window,
    /// linearly interpolated on the ramps, `magnitude` during the hold.
    pub fn factor(&self, i: usize) -> f64 {
        if i < self.start {
            return 1.0;
        }
        let into = i - self.start;
        if into < self.ramp {
            // Ramp up.
            let frac = (into + 1) as f64 / (self.ramp + 1) as f64;
            1.0 + (self.magnitude - 1.0) * frac
        } else if into < self.ramp + self.hold {
            self.magnitude
        } else if into < 2 * self.ramp + self.hold {
            // Ramp down.
            let out = into - self.ramp - self.hold + 1;
            self.magnitude - (self.magnitude - 1.0) * out as f64 / (self.ramp + 1) as f64
        } else {
            1.0
        }
    }

    fn validate(&self, n: usize) {
        assert!(
            self.hotspots >= 1 && self.hotspots < n,
            "hotspot count must be in [1, n)"
        );
        assert!(
            self.magnitude.is_finite() && self.magnitude >= 1.0,
            "magnitude must be finite and >= 1"
        );
    }
}

/// A flash-crowd sequence: a gravity base matrix with traffic towards
/// seeded hotspot destinations multiplied by the spike window of
/// `params`, plus small multiplicative jitter everywhere.
///
/// # Panics
///
/// Panics if `n < 2`, `params.hotspots` is not in `[1, n)`, or
/// `params.magnitude < 1`.
pub fn flash_crowd<R: Rng>(
    n: usize,
    length: usize,
    total: f64,
    params: &FlashCrowdParams,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(n >= 2, "need at least two nodes");
    params.validate(n);
    let base = gravity(n, total, rng);
    let hot = pick_hotspots(n, params.hotspots, rng);
    (0..length)
        .map(|i| {
            let spike = params.factor(i);
            DemandMatrix::from_fn(n, |s, t| {
                let f = if hot.contains(&t) { spike } else { 1.0 };
                base.get(s, t) * f * rng.gen_range(0.97..1.03)
            })
        })
        .collect()
}

/// Shape of an elephant/mice traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ElephantMiceParams {
    /// Persistent heavy flows (fixed `(s, t)` pairs for the whole
    /// sequence).
    pub elephants: usize,
    /// Mean volume per elephant; actual volume jitters ±20%.
    pub elephant_mean: f64,
    /// Per-step probability that any `(s, t)` pair carries a mouse.
    pub mice_density: f64,
    /// Mean volume per mouse; actual volume is uniform in
    /// `[0.2, 1.8] × mean`.
    pub mice_mean: f64,
}

impl Default for ElephantMiceParams {
    fn default() -> Self {
        ElephantMiceParams {
            elephants: 6,
            elephant_mean: 900.0,
            mice_density: 0.05,
            mice_mean: 60.0,
        }
    }
}

/// An elephant/mice sequence: a few persistent high-volume pairs
/// (elephants, fixed across the whole sequence with per-step ±20%
/// jitter) over a churning sparse background of mice resampled every
/// step. The paper's bimodal generator mixes volumes per-entry; this
/// regime separates *persistence* — elephants stay put while mice
/// churn — which is what stresses history-based routing.
///
/// The matrices are mostly zeros, so downstream per-commodity work
/// (LP columns, utilisation accumulation) scales with the sparse
/// support rather than `n²` — the regime big-WAN sweeps rely on.
///
/// # Panics
///
/// Panics if `n < 2`, there are fewer than `elephants` distinct pairs,
/// or `mice_density` is not in `[0, 1]`.
pub fn elephant_mice<R: Rng>(
    n: usize,
    length: usize,
    params: &ElephantMiceParams,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        params.elephants <= n * (n - 1),
        "more elephants than distinct pairs"
    );
    assert!(
        (0.0..=1.0).contains(&params.mice_density),
        "mice_density must be a probability"
    );
    // Fixed elephant pairs for the whole sequence.
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(params.elephants);
    while pairs.len() < params.elephants {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t && !pairs.contains(&(s, t)) {
            pairs.push((s, t));
        }
    }
    // Expected mice per step over the full pair space.
    let mice_per_step = ((n * (n - 1)) as f64 * params.mice_density).round() as usize;
    (0..length)
        .map(|_| {
            let mut dm = DemandMatrix::zeros(n);
            for &(s, t) in &pairs {
                dm.set(s, t, params.elephant_mean * rng.gen_range(0.8..1.2));
            }
            for _ in 0..mice_per_step {
                let s = rng.gen_range(0..n);
                let t = rng.gen_range(0..n);
                if s != t {
                    let v = dm.get(s, t) + params.mice_mean * rng.gen_range(0.2..1.8);
                    dm.set(s, t, v);
                }
            }
            dm
        })
        .collect()
}

/// A diurnal cycle with a flash crowd layered on top: the gravity base
/// swings sinusoidally between `1 - depth` and `1 + depth` with period
/// `period`, while hotspot destinations additionally ramp through the
/// spike window of `fc` — the compound regime the scenario engine's
/// `diurnal_flash_crowd` chaos scenario drives.
///
/// # Panics
///
/// Panics if `n < 2`, `period == 0`, `depth` is not in `[0, 1)`, or
/// `fc` is invalid per [`flash_crowd`].
pub fn diurnal_flash_crowd<R: Rng>(
    n: usize,
    length: usize,
    period: usize,
    depth: f64,
    total: f64,
    fc: &FlashCrowdParams,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(n >= 2, "need at least two nodes");
    assert!(period > 0, "period must be positive");
    assert!((0.0..1.0).contains(&depth), "depth must be in [0, 1)");
    fc.validate(n);
    let base = gravity(n, total, rng);
    let hot = pick_hotspots(n, fc.hotspots, rng);
    (0..length)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
            let day = 1.0 + depth * phase.sin();
            let spike = fc.factor(i);
            DemandMatrix::from_fn(n, |s, t| {
                let f = if hot.contains(&t) { spike } else { 1.0 };
                base.get(s, t) * day * f * rng.gen_range(0.97..1.03)
            })
        })
        .collect()
}

fn pick_hotspots<R: Rng>(n: usize, count: usize, rng: &mut R) -> Vec<usize> {
    let mut hot = Vec::with_capacity(count);
    while hot.len() < count {
        let t = rng.gen_range(0..n);
        if !hot.contains(&t) {
            hot.push(t);
        }
    }
    hot
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    #[test]
    fn flash_crowd_spikes_and_recovers() {
        let params = FlashCrowdParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let seq = flash_crowd(10, 32, 5000.0, &params, &mut rng);
        assert_eq!(seq.len(), 32);
        let before = seq[0].total();
        let peak_step = params.start + params.ramp + params.hold / 2;
        let peak = seq[peak_step].total();
        let after = seq[31].total();
        assert!(peak > before * 1.5, "peak {peak} vs before {before}");
        assert!(after < peak / 1.5, "spike must subside");
    }

    #[test]
    fn spike_factor_window_shape() {
        let p = FlashCrowdParams {
            hotspots: 1,
            start: 10,
            ramp: 2,
            hold: 3,
            magnitude: 5.0,
        };
        assert_eq!(p.factor(0), 1.0);
        assert_eq!(p.factor(9), 1.0);
        assert!(p.factor(10) > 1.0 && p.factor(10) < 5.0);
        assert_eq!(p.factor(12), 5.0);
        assert_eq!(p.factor(14), 5.0);
        assert!(p.factor(15) < 5.0 && p.factor(15) > 1.0);
        assert_eq!(p.factor(17), 1.0);
        assert_eq!(p.factor(100), 1.0);
    }

    #[test]
    fn elephant_mice_has_persistent_elephants_and_churning_mice() {
        let params = ElephantMiceParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        let seq = elephant_mice(20, 16, &params, &mut rng);
        // The heaviest pairs of step 0 stay heavy in every step.
        let mut heavy: Vec<(usize, usize)> = seq[0]
            .commodities()
            .filter(|&(_, _, v)| v >= params.elephant_mean * 0.8)
            .map(|(s, t, _)| (s, t))
            .collect();
        heavy.sort_unstable();
        assert_eq!(heavy.len(), params.elephants);
        for dm in &seq {
            for &(s, t) in &heavy {
                assert!(dm.get(s, t) >= params.elephant_mean * 0.8);
            }
        }
        // Mice churn: the sparse support differs between steps.
        let support = |dm: &DemandMatrix| -> Vec<(usize, usize)> {
            dm.commodities().map(|(s, t, _)| (s, t)).collect()
        };
        assert_ne!(support(&seq[0]), support(&seq[1]));
        // And the matrices stay sparse.
        let filled = seq[0].commodities().count();
        assert!(filled < 20 * 19 / 2, "elephant/mice matrices are sparse");
    }

    #[test]
    fn diurnal_flash_crowd_layers_both_signals() {
        let fc = FlashCrowdParams {
            start: 6,
            ramp: 2,
            hold: 4,
            magnitude: 8.0,
            hotspots: 1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let seq = diurnal_flash_crowd(12, 24, 12, 0.4, 6000.0, &fc, &mut rng);
        assert_eq!(seq.len(), 24);
        let totals: Vec<f64> = seq.iter().map(DemandMatrix::total).collect();
        // The spike peak dominates the diurnal swing.
        let peak = totals[8];
        let trough = totals[20];
        assert!(peak > trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn scenario_generators_are_deterministic_under_seed() {
        let p = FlashCrowdParams::default();
        let a = flash_crowd(8, 10, 100.0, &p, &mut StdRng::seed_from_u64(9));
        let b = flash_crowd(8, 10, 100.0, &p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let em = ElephantMiceParams::default();
        let c = elephant_mice(8, 10, &em, &mut StdRng::seed_from_u64(9));
        let d = elephant_mice(8, 10, &em, &mut StdRng::seed_from_u64(9));
        assert_eq!(c, d);
    }

    #[test]
    #[should_panic(expected = "magnitude")]
    fn flash_crowd_rejects_sub_unit_magnitude() {
        let p = FlashCrowdParams {
            magnitude: 0.5,
            ..FlashCrowdParams::default()
        };
        flash_crowd(8, 4, 100.0, &p, &mut StdRng::seed_from_u64(0));
    }
}
