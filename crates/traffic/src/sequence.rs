//! Demand sequences with temporal regularity.
//!
//! The paper (§VIII-B) trains on "cyclical sequences": `x = {D_{i mod
//! q}}_i` where `D` is a sequence of `q` distinct demand matrices. The
//! agent observes the previous `m` matrices and must route the next
//! one, exploiting the cycle.

use gddr_rng::Rng;

use crate::demand::DemandMatrix;
use crate::gen::{bimodal, BimodalParams};

/// Builds a cyclical sequence of `length` demand matrices cycling
/// through `cycle` distinct bimodal DMs (the paper's workload with
/// `cycle = 10`, `length = 60`).
///
/// # Panics
///
/// Panics if `cycle == 0`.
pub fn cyclical<R: Rng>(
    n: usize,
    cycle: usize,
    length: usize,
    params: &BimodalParams,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(cycle > 0, "cycle length must be positive");
    let base: Vec<DemandMatrix> = (0..cycle).map(|_| bimodal(n, params, rng)).collect();
    (0..length).map(|i| base[i % cycle].clone()).collect()
}

/// Builds a cyclical sequence from caller-provided base matrices.
///
/// # Panics
///
/// Panics if `base` is empty or the matrices disagree on node count.
pub fn cyclical_from(base: &[DemandMatrix], length: usize) -> Vec<DemandMatrix> {
    assert!(!base.is_empty(), "need at least one base matrix");
    let n = base[0].num_nodes();
    assert!(
        base.iter().all(|dm| dm.num_nodes() == n),
        "all base matrices must have the same node count"
    );
    (0..length).map(|i| base[i % base.len()].clone()).collect()
}

/// A noisy cyclical sequence: each repetition perturbs every demand by
/// a multiplicative factor in `[1-jitter, 1+jitter]`. Models the paper's
/// "temporal regularities" assumption without exact repetition.
///
/// # Panics
///
/// Panics if `cycle == 0` or `jitter` is not in `[0, 1)`.
pub fn noisy_cyclical<R: Rng>(
    n: usize,
    cycle: usize,
    length: usize,
    jitter: f64,
    params: &BimodalParams,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(cycle > 0, "cycle length must be positive");
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let base: Vec<DemandMatrix> = (0..cycle).map(|_| bimodal(n, params, rng)).collect();
    (0..length)
        .map(|i| {
            let b = &base[i % cycle];
            DemandMatrix::from_fn(n, |s, t| {
                b.get(s, t) * rng.gen_range(1.0 - jitter..1.0 + jitter)
            })
        })
        .collect()
}

/// A diurnal sequence: a fixed gravity-model base matrix modulated by a
/// sinusoidal day/night cycle plus bimodal noise — the "people live by
/// cyclic patterns (weeks, days)" regularity the paper's §III argues
/// makes history-based routing viable.
///
/// `period` is the number of timesteps per simulated day; the
/// modulation swings total volume between `1 - depth` and `1 + depth`
/// of the base.
///
/// # Panics
///
/// Panics if `period == 0` or `depth` is not in `[0, 1)`.
pub fn diurnal<R: Rng>(
    n: usize,
    length: usize,
    period: usize,
    depth: f64,
    total: f64,
    rng: &mut R,
) -> Vec<DemandMatrix> {
    assert!(period > 0, "period must be positive");
    assert!((0.0..1.0).contains(&depth), "depth must be in [0, 1)");
    let base = crate::gen::gravity(n, total, rng);
    (0..length)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
            let factor = 1.0 + depth * phase.sin();
            DemandMatrix::from_fn(n, |s, t| {
                base.get(s, t) * factor * rng.gen_range(0.95..1.05)
            })
        })
        .collect()
}

/// Generates `count` independent sequences (the paper uses 7 for
/// training plus 3 for testing) and splits them.
pub fn train_test_split<R: Rng>(
    n: usize,
    cycle: usize,
    length: usize,
    train_count: usize,
    test_count: usize,
    params: &BimodalParams,
    rng: &mut R,
) -> (Vec<Vec<DemandMatrix>>, Vec<Vec<DemandMatrix>>) {
    let train = (0..train_count)
        .map(|_| cyclical(n, cycle, length, params, rng))
        .collect();
    let test = (0..test_count)
        .map(|_| cyclical(n, cycle, length, params, rng))
        .collect();
    (train, test)
}

/// Element-wise average of a window of demand matrices — a simple
/// predictor baseline ("route for the average of history").
///
/// # Panics
///
/// Panics if `window` is empty or node counts disagree.
pub fn average(window: &[&DemandMatrix]) -> DemandMatrix {
    assert!(!window.is_empty(), "need at least one matrix");
    let n = window[0].num_nodes();
    assert!(window.iter().all(|dm| dm.num_nodes() == n));
    let k = window.len() as f64;
    DemandMatrix::from_fn(n, |s, t| {
        window.iter().map(|dm| dm.get(s, t)).sum::<f64>() / k
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_rng::rngs::StdRng;
    use gddr_rng::SeedableRng;

    #[test]
    fn cyclical_repeats_exactly() {
        let mut rng = StdRng::seed_from_u64(0);
        let seq = cyclical(6, 4, 12, &BimodalParams::default(), &mut rng);
        assert_eq!(seq.len(), 12);
        for i in 0..8 {
            assert_eq!(seq[i], seq[i + 4]);
        }
        assert_ne!(seq[0], seq[1]);
    }

    #[test]
    fn cyclical_from_wraps() {
        let a = DemandMatrix::from_fn(3, |_, _| 1.0);
        let b = DemandMatrix::from_fn(3, |_, _| 2.0);
        let seq = cyclical_from(&[a.clone(), b.clone()], 5);
        assert_eq!(seq[0], a);
        assert_eq!(seq[1], b);
        assert_eq!(seq[4], a);
    }

    #[test]
    fn noisy_cyclical_perturbs_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = noisy_cyclical(5, 2, 6, 0.1, &BimodalParams::default(), &mut rng);
        // Same cycle position, different noise.
        assert_ne!(seq[0], seq[2]);
        for s in 0..5 {
            for t in 0..5 {
                if s != t && seq[0].get(s, t) > 0.0 {
                    let ratio = seq[2].get(s, t) / seq[0].get(s, t);
                    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn split_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = train_test_split(4, 3, 9, 7, 3, &BimodalParams::default(), &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert!(train.iter().all(|s| s.len() == 9));
        // Sequences are independent draws.
        assert_ne!(train[0][0], train[1][0]);
    }

    #[test]
    fn average_of_identical_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let dm = bimodal(4, &BimodalParams::default(), &mut rng);
        let avg = average(&[&dm, &dm, &dm]);
        for s in 0..4 {
            for t in 0..4 {
                assert!((avg.get(s, t) - dm.get(s, t)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn average_mixes() {
        let a = DemandMatrix::from_fn(3, |_, _| 2.0);
        let b = DemandMatrix::from_fn(3, |_, _| 4.0);
        let avg = average(&[&a, &b]);
        assert_eq!(avg.get(0, 1), 3.0);
    }

    #[test]
    fn diurnal_modulates_total_volume() {
        let mut rng = StdRng::seed_from_u64(4);
        let seq = diurnal(6, 20, 20, 0.5, 1000.0, &mut rng);
        assert_eq!(seq.len(), 20);
        let totals: Vec<f64> = seq.iter().map(|dm| dm.total()).collect();
        let max = totals.iter().cloned().fold(0.0, f64::max);
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        // Peak-to-trough swing reflects the modulation depth.
        assert!(max / min > 2.0, "swing too small: {min}..{max}");
        // Peak is near a quarter period (sin maximum).
        let argmax = totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((3..=7).contains(&argmax), "peak at {argmax}");
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn diurnal_rejects_bad_depth() {
        let mut rng = StdRng::seed_from_u64(0);
        diurnal(4, 10, 5, 1.5, 100.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn rejects_zero_cycle() {
        let mut rng = StdRng::seed_from_u64(0);
        cyclical(4, 0, 10, &BimodalParams::default(), &mut rng);
    }
}
