//! Microbenchmark: encode-process-decode forward and backward passes
//! on Abilene-sized graphs, across message-passing step counts.

use gddr_bench::harness::BenchGroup;
use gddr_gnn::{EncodeProcessDecode, EpdConfig, GraphFeatures, GraphStructure};
use gddr_net::topology::zoo;
use gddr_nn::{Matrix, ParamStore, Tape};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;

fn main() {
    let g = zoo::abilene();
    let s = GraphStructure::from_graph(&g);
    let mut group = BenchGroup::new("gnn_epd");
    for steps in [1usize, 3, 5] {
        let cfg = EpdConfig {
            node_in: 10,
            edge_in: 3,
            global_in: 1,
            node_out: 1,
            edge_out: 1,
            global_out: 1,
            latent: 16,
            hidden: 32,
            message_steps: steps,
            layer_norm: false,
        };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = EncodeProcessDecode::new(&mut store, "epd", &cfg, &mut rng);
        let feats = GraphFeatures {
            nodes: Matrix::full(s.num_nodes, 10, 0.3),
            edges: Matrix::zeros(s.num_edges, 3),
            globals: Matrix::zeros(1, 1),
        };
        group.bench(&format!("forward/{steps}"), || {
            let mut tape = Tape::new();
            net.forward(&mut tape, &store, &s, &feats)
        });
        group.bench(&format!("forward_backward/{steps}"), || {
            let mut tape = Tape::new();
            let out = net.forward(&mut tape, &store, &s, &feats);
            let loss = tape.sum_all(out.edges);
            let mut store_mut = store.clone();
            tape.backward(loss, &mut store_mut);
        });
    }
    group.finish();
}
