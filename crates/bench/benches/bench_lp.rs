//! Microbenchmark: LP oracle solve time across topology sizes.
//!
//! The paper notes "the LP step makes the process CPU-bound"
//! (§VIII-C); this bench quantifies the oracle cost per topology and
//! the effect of the demand-matrix cache.

use gddr_bench::harness::BenchGroup;
use gddr_lp::mcf::{min_max_utilisation, CachedOracle};
use gddr_net::topology::zoo;
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_traffic::gen::{bimodal, BimodalParams};

fn bench_lp_solve() {
    let mut group = BenchGroup::new("lp_solve");
    group.sample_size(10);
    group
        .meta("demand_model", "bimodal_default")
        .meta("seed", 0usize);
    for g in [zoo::cesnet(), zoo::abilene(), zoo::nsfnet()] {
        let mut rng = StdRng::seed_from_u64(0);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        group.bench(&format!("{}_{}n", g.name(), g.num_nodes()), || {
            min_max_utilisation(&g, &dm).unwrap().u_max
        });
    }
    group.finish();
}

fn bench_lp_cache() {
    let g = zoo::abilene();
    let mut rng = StdRng::seed_from_u64(1);
    let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
    let oracle = CachedOracle::new(g);
    oracle.u_opt(&dm).unwrap(); // warm
    let mut group = BenchGroup::new("lp_cache");
    group
        .meta("topology", "abilene")
        .meta("demand_model", "bimodal_default")
        .meta("seed", 1usize);
    group.bench("lp_cache_hit", || oracle.u_opt(&dm).unwrap());
    group.finish();
}

fn main() {
    bench_lp_solve();
    bench_lp_cache();
}
