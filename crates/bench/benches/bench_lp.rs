//! Microbenchmark: LP oracle solve time across topology sizes.
//!
//! The paper notes "the LP step makes the process CPU-bound"
//! (§VIII-C); this bench quantifies the oracle cost per topology and
//! the effect of the demand-matrix cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gddr_lp::mcf::{min_max_utilisation, CachedOracle};
use gddr_net::topology::zoo;
use gddr_traffic::gen::{bimodal, BimodalParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_lp_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve");
    group.sample_size(10);
    for g in [zoo::cesnet(), zoo::abilene(), zoo::nsfnet()] {
        let mut rng = StdRng::seed_from_u64(0);
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{}n", g.name(), g.num_nodes())),
            &(&g, &dm),
            |b, (g, dm)| b.iter(|| min_max_utilisation(g, dm).unwrap().u_max),
        );
    }
    group.finish();
}

fn bench_lp_cache(c: &mut Criterion) {
    let g = zoo::abilene();
    let mut rng = StdRng::seed_from_u64(1);
    let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
    let oracle = CachedOracle::new(g);
    oracle.u_opt(&dm).unwrap(); // warm
    c.bench_function("lp_cache_hit", |b| b.iter(|| oracle.u_opt(&dm).unwrap()));
}

criterion_group!(benches, bench_lp_solve, bench_lp_cache);
criterion_main!(benches);
