//! Ablation C: DAG-conversion algorithms (paper Alg. 3 vs the
//! distance-filter default; see DESIGN.md "Substitutions").
//!
//! Prints a quality table (mean U/U_opt and retained-edge counts for
//! both pruning modes across zoo topologies), then benchmarks the
//! pruning cost.

use gddr_bench::harness::BenchGroup;
use gddr_lp::mcf::CachedOracle;
use gddr_net::topology::zoo;
use gddr_net::NodeId;
use gddr_rng::rngs::StdRng;
use gddr_rng::{Rng, SeedableRng};
use gddr_routing::prune::{distance_dag, frontier_meets_dag, PruneMode};
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_traffic::gen::{bimodal, BimodalParams};

fn quality_table() {
    eprintln!("# ablation C: pruning quality (gamma 2, random weights)");
    eprintln!("# topology, mode, mean U/U_opt, kept edges (sink 0)");
    let mut rng = StdRng::seed_from_u64(0);
    for g in [zoo::cesnet(), zoo::abilene()] {
        let oracle = CachedOracle::new(g.clone());
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let weights: Vec<f64> = (0..g.num_edges())
            .map(|_| rng.gen_range(0.5..4.5))
            .collect();
        for mode in [PruneMode::DistanceDag, PruneMode::FrontierMeets] {
            let cfg = SoftminConfig {
                gamma: 2.0,
                prune_mode: mode,
            };
            let routing = softmin_routing(&g, &weights, &cfg).unwrap();
            let ratio =
                max_link_utilisation(&g, &routing, &dm).unwrap().u_max / oracle.u_opt(&dm).unwrap();
            let kept = match mode {
                PruneMode::DistanceDag => distance_dag(&g, NodeId(0), &weights),
                PruneMode::FrontierMeets => frontier_meets_dag(&g, NodeId(1), NodeId(0), &weights),
            }
            .iter()
            .filter(|&&m| m)
            .count();
            eprintln!("{},{mode:?},{ratio:.4},{kept}", g.name());
        }
    }
}

fn main() {
    quality_table();
    let g = zoo::abilene();
    let mut rng = StdRng::seed_from_u64(1);
    let weights: Vec<f64> = (0..g.num_edges())
        .map(|_| rng.gen_range(0.5..4.5))
        .collect();
    let mut group = BenchGroup::new("prune");
    group.bench("distance_dag", || distance_dag(&g, NodeId(0), &weights));
    group.bench("frontier_meets", || {
        frontier_meets_dag(&g, NodeId(1), NodeId(0), &weights)
    });
    group.finish();
}
