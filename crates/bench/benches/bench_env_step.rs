//! Microbenchmark: full environment step rate (the paper reports ~70
//! frames per second for its Python stack, §VIII-D).
//!
//! Measures a complete step — policy forward pass, softmin
//! translation, flow simulation and (cached) LP reward — for the
//! one-shot env with both the MLP and the GNN policy.

use gddr_bench::harness::BenchGroup;
use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext};
use gddr_core::policies::{GnnPolicy, GnnPolicyConfig, MlpPolicy};
use gddr_net::topology::zoo;
use gddr_rl::{Env, Policy};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;

fn env_with_warm_cache(rng: &mut StdRng) -> DdrEnv {
    let g = zoo::abilene();
    let seqs = standard_sequences(&g, 2, 60, 10, rng);
    let mut env = DdrEnv::new(GraphContext::new(g.clone(), seqs), DdrEnvConfig::default());
    // Warm the LP cache the way training does.
    let action = vec![0.0; env.action_dim()];
    for _ in 0..2 {
        env.reset(rng);
        let mut done = false;
        while !done {
            done = env.step(&action, rng).done;
        }
    }
    env
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut env = env_with_warm_cache(&mut rng);

    let mlp = MlpPolicy::new(5, 11, 28, &[64, 64], -0.7, &mut rng);
    let gnn = GnnPolicy::new(&GnnPolicyConfig::default(), -0.7, &mut rng);

    let mut group = BenchGroup::new("env_step_abilene");
    group.sample_size(30);
    group
        .meta("topology", "abilene")
        .meta("sequences", 2usize)
        .meta("seq_length", 60usize)
        .meta("cycle", 10usize)
        .meta("seed", 0usize);
    {
        let mut obs = env.reset(&mut rng);
        group.bench("mlp_policy", || {
            let sample = mlp.act(&obs, &mut rng);
            let step = env.step(&sample.action, &mut rng);
            obs = if step.done {
                env.reset(&mut rng)
            } else {
                step.obs
            };
        });
    }
    {
        let mut obs = env.reset(&mut rng);
        group.bench("gnn_policy", || {
            let sample = gnn.act(&obs, &mut rng);
            let step = env.step(&sample.action, &mut rng);
            obs = if step.done {
                env.reset(&mut rng)
            } else {
                step.obs
            };
        });
    }
    group.finish();
}
