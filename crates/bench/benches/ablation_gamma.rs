//! Ablation A: the softmin temperature γ (paper Eq. 3).
//!
//! Prints a quality table (mean U/U_opt of uniform-weight softmin
//! routing for γ ∈ {0.5 … 10} on Abilene) before benchmarking the
//! translation cost as a function of γ (which should be flat — γ only
//! changes arithmetic, not structure).

use gddr_bench::harness::BenchGroup;
use gddr_lp::mcf::CachedOracle;
use gddr_net::topology::zoo;
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_traffic::gen::{bimodal, BimodalParams};

const GAMMAS: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 7.0, 10.0];

fn quality_table() {
    let g = zoo::abilene();
    let oracle = CachedOracle::new(g.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let dms: Vec<_> = (0..5)
        .map(|_| bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng))
        .collect();
    let w = vec![1.0; g.num_edges()];
    eprintln!("# ablation A: softmin gamma quality (uniform weights, Abilene)");
    eprintln!("# gamma, mean U/U_opt");
    for gamma in GAMMAS {
        let cfg = SoftminConfig {
            gamma,
            ..Default::default()
        };
        let routing = softmin_routing(&g, &w, &cfg).unwrap();
        let mean: f64 = dms
            .iter()
            .map(|dm| {
                max_link_utilisation(&g, &routing, dm).unwrap().u_max / oracle.u_opt(dm).unwrap()
            })
            .sum::<f64>()
            / dms.len() as f64;
        eprintln!("{gamma},{mean:.4}");
    }
}

fn main() {
    quality_table();
    let g = zoo::abilene();
    let w = vec![1.0; g.num_edges()];
    let mut group = BenchGroup::new("softmin_gamma");
    group.sample_size(20);
    for gamma in [0.5, 2.0, 10.0] {
        let cfg = SoftminConfig {
            gamma,
            ..Default::default()
        };
        group.bench(&format!("{gamma}"), || {
            softmin_routing(&g, &w, &cfg).unwrap()
        });
    }
    group.finish();
}
