//! Microbenchmark: softmin routing translation (paper Alg. 2) across
//! topology sizes and pruning modes.

use gddr_bench::harness::BenchGroup;
use gddr_net::topology::zoo;
use gddr_rng::rngs::StdRng;
use gddr_rng::{Rng, SeedableRng};
use gddr_routing::prune::PruneMode;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};

fn main() {
    let mut group = BenchGroup::new("softmin_routing");
    group.sample_size(20);
    for g in [zoo::cesnet(), zoo::abilene(), zoo::geant()] {
        let mut rng = StdRng::seed_from_u64(0);
        let weights: Vec<f64> = (0..g.num_edges())
            .map(|_| rng.gen_range(0.5..4.5))
            .collect();
        for (label, mode) in [
            ("distance_dag", PruneMode::DistanceDag),
            ("frontier_meets", PruneMode::FrontierMeets),
        ] {
            // Frontier-meets is per-flow (|V|² prunings); skip it on the
            // largest graph to keep the bench short.
            if matches!(mode, PruneMode::FrontierMeets) && g.num_nodes() > 14 {
                continue;
            }
            let cfg = SoftminConfig {
                gamma: 2.0,
                prune_mode: mode,
            };
            group.bench(&format!("{label}/{}_{}n", g.name(), g.num_nodes()), || {
                softmin_routing(&g, &weights, &cfg).unwrap()
            });
        }
    }
    group.finish();
}
