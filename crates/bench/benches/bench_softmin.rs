//! Microbenchmark: softmin routing translation (paper Alg. 2) across
//! topology sizes and pruning modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gddr_net::topology::zoo;
use gddr_routing::prune::PruneMode;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_softmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmin_routing");
    group.sample_size(20);
    for g in [zoo::cesnet(), zoo::abilene(), zoo::geant()] {
        let mut rng = StdRng::seed_from_u64(0);
        let weights: Vec<f64> = (0..g.num_edges())
            .map(|_| rng.gen_range(0.5..4.5))
            .collect();
        for (label, mode) in [
            ("distance_dag", PruneMode::DistanceDag),
            ("frontier_meets", PruneMode::FrontierMeets),
        ] {
            // Frontier-meets is per-flow (|V|² prunings); skip it on the
            // largest graph to keep the bench short.
            if matches!(mode, PruneMode::FrontierMeets) && g.num_nodes() > 14 {
                continue;
            }
            let cfg = SoftminConfig {
                gamma: 2.0,
                prune_mode: mode,
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{}_{}n", g.name(), g.num_nodes())),
                &(&g, &weights, &cfg),
                |b, (g, w, cfg)| b.iter(|| softmin_routing(g, w, cfg)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_softmin);
criterion_main!(benches);
