//! JSON export for experiment-result artifacts.
//!
//! The heavy lifting lives in the `gddr-ser` crate (the hermetic
//! replacement for `serde`); this module keeps the `to_json` /
//! [`JsonError`] names the figure binaries call so they read the same
//! as before the migration.

pub use gddr_ser::JsonError;
use gddr_ser::ToJson;

/// Serialises any [`ToJson`] value to a compact JSON string.
///
/// # Errors
///
/// Kept fallible for call-site compatibility; serialisation itself
/// cannot fail (non-finite floats panic in `gddr-ser` instead).
pub fn to_json<T: ToJson>(value: &T) -> Result<String, JsonError> {
    Ok(value.to_json().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gddr_ser::{Json, ToJson};

    struct Sample {
        name: String,
        values: Vec<f64>,
        pair: (usize, f64),
        flag: bool,
        missing: Option<u32>,
        present: Option<u32>,
    }

    impl ToJson for Sample {
        fn to_json(&self) -> Json {
            Json::obj([
                ("name", self.name.to_json()),
                ("values", self.values.to_json()),
                ("pair", self.pair.to_json()),
                ("flag", self.flag.to_json()),
                ("missing", self.missing.to_json()),
                ("present", self.present.to_json()),
            ])
        }
    }

    #[test]
    fn struct_round_trip_shape() {
        let s = Sample {
            name: "fig6".into(),
            values: vec![1.0, 2.5],
            pair: (3, 4.5),
            flag: true,
            missing: None,
            present: Some(7),
        };
        let json = to_json(&s).unwrap();
        assert_eq!(
            json,
            r#"{"name":"fig6","values":[1,2.5],"pair":[3,4.5],"flag":true,"missing":null,"present":7}"#
        );
    }

    #[test]
    fn string_escaping() {
        let json = to_json(&"a\"b\\c\nd").unwrap();
        assert_eq!(json, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn graph_serialises_with_full_structure() {
        let g = gddr_net::topology::zoo::cesnet();
        let json = to_json(&g).unwrap();
        assert!(json.contains("\"name\":\"Cesnet\""));
        assert!(json.contains("\"capacity\":10000"));
        // Every edge appears (src/dst node-id fields).
        assert_eq!(json.matches("\"src\":").count(), g.num_edges());
    }

    #[test]
    fn demand_matrix_serialises() {
        let mut dm = gddr_traffic::DemandMatrix::zeros(2);
        dm.set(0, 1, 3.5);
        let json = to_json(&dm).unwrap();
        assert!(json.contains("3.5"));
    }

    #[test]
    fn training_log_serialises() {
        let mut log = gddr_rl::TrainingLog::default();
        log.episodes.push((10, -1.5));
        log.total_steps = 10;
        let json = to_json(&log).unwrap();
        assert!(json.contains("\"episodes\":[[10,-1.5]]"));
        assert!(json.contains("\"total_steps\":10"));
    }
}
