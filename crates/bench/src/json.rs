//! A minimal JSON serializer backend for `serde::Serialize`.
//!
//! The approved offline dependency set does not include `serde_json`,
//! so this module implements the small subset of a serde serializer the
//! experiment-result types need (primitives, strings, sequences,
//! tuples, structs, maps, options) to export figure data as JSON
//! artifacts.

use std::fmt::Write as _;

use serde::ser::{self, Serialize};

/// Serialises any `Serialize` value to a JSON string.
///
/// # Errors
///
/// Returns an error for unsupported shapes (e.g. non-string map keys)
/// or non-finite floats.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut ser = Serializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Serialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialisation failed: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

struct Serializer {
    out: String,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compound serializer tracking element separators.
struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        write!(self.out, "{v}").expect("string write");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        write!(self.out, "{v}").expect("string write");
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(v as f64)
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if !v.is_finite() {
            return Err(JsonError(format!("non-finite float {v}")));
        }
        // `{v}` prints integral floats without a dot; keep them valid
        // JSON numbers either way.
        write!(self.out, "{v}").expect("string write");
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(&mut self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(&mut self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: ']', // The variant object brace is closed in `end`.
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_map(None)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: '}', // The variant object brace is closed in `end`.
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // JSON keys must be strings; serialise the key and require it
        // to have produced a string literal.
        let before = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[before..].starts_with('"') {
            return Err(JsonError("map keys must be strings".into()));
        }
        self.ser.out.push(':');
        Ok(())
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        escape_into(&mut self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Sample {
        name: String,
        values: Vec<f64>,
        pair: (usize, f64),
        flag: bool,
        missing: Option<u32>,
        present: Option<u32>,
    }

    #[test]
    fn struct_round_trip_shape() {
        let s = Sample {
            name: "fig6".into(),
            values: vec![1.0, 2.5],
            pair: (3, 4.5),
            flag: true,
            missing: None,
            present: Some(7),
        };
        let json = to_json(&s).unwrap();
        assert_eq!(
            json,
            r#"{"name":"fig6","values":[1,2.5],"pair":[3,4.5],"flag":true,"missing":null,"present":7}"#
        );
    }

    #[test]
    fn string_escaping() {
        let json = to_json(&"a\"b\\c\nd").unwrap();
        assert_eq!(json, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn maps_and_enums() {
        let mut m = BTreeMap::new();
        m.insert("k1".to_string(), 1u32);
        m.insert("k2".to_string(), 2u32);
        assert_eq!(to_json(&m).unwrap(), r#"{"k1":1,"k2":2}"#);

        #[derive(Serialize)]
        enum E {
            Unit,
            Newtype(u32),
            Struct { x: u32 },
        }
        assert_eq!(to_json(&E::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_json(&E::Newtype(5)).unwrap(), r#"{"Newtype":5}"#);
        assert_eq!(
            to_json(&E::Struct { x: 9 }).unwrap(),
            r#"{"Struct":{"x":9}}"#
        );
    }

    #[test]
    fn rejects_non_finite_floats() {
        assert!(to_json(&f64::NAN).is_err());
        assert!(to_json(&f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_integer_map_keys() {
        let mut m = BTreeMap::new();
        m.insert(1u32, "x");
        assert!(to_json(&m).is_err());
    }

    #[test]
    fn graph_serialises_with_full_structure() {
        let g = gddr_net::topology::zoo::cesnet();
        let json = to_json(&g).unwrap();
        assert!(json.contains("\"name\":\"Cesnet\""));
        assert!(json.contains("\"capacity\":10000"));
        // Every edge appears (src/dst node-id fields).
        assert_eq!(json.matches("\"src\":").count(), g.num_edges());
    }

    #[test]
    fn demand_matrix_serialises() {
        let mut dm = gddr_traffic::DemandMatrix::zeros(2);
        dm.set(0, 1, 3.5);
        let json = to_json(&dm).unwrap();
        assert!(json.contains("3.5"));
    }

    #[test]
    fn training_log_serialises() {
        let mut log = gddr_rl::TrainingLog::default();
        log.episodes.push((10, -1.5));
        log.total_steps = 10;
        let json = to_json(&log).unwrap();
        assert!(json.contains("\"episodes\":[[10,-1.5]]"));
        assert!(json.contains("\"total_steps\":10"));
    }
}
