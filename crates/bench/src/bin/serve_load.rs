//! Fleet load bench: a sharded multi-topology serving fleet under a
//! sustained request stream, with batched GNN inference.
//!
//! Five phases, all checked:
//!
//! 1. **load** — ≥100k requests across ≥10 zoo-topology shards,
//!    reporting sustained req/s and p50/p99 drain latency per ladder
//!    rung,
//! 2. **identity** — the same (smaller) stream through a coalescing
//!    fleet and a per-request fleet; every routing must match bit for
//!    bit (batched GNN inference is exactly per-request inference),
//! 3. **chaos** — one shard's workers die under a panic storm with
//!    zero restart budget; only that shard may degrade, every other
//!    shard must stay 100% Fresh,
//! 4. **replicated** — a two-replica fleet with a dying primary: the
//!    set must hedge the in-window batches, fail over to the standby,
//!    shadow-probe the demoted primary back to eligibility, answer
//!    every request, and replay bit-identically under the same seed,
//! 5. **recovery_drill** — a snapshot-enabled fleet crashes mid-serve
//!    and is rebuilt from its durable store: the restore must come
//!    back warm (first post-restore responses on the restored
//!    LastGood rung, restore wall time reported), and a corrupted
//!    store must degrade to a clean cold start that still serves.
//!
//! ```text
//! serve_load [--requests N] [--seed N] [--clients N] [--coalesce N]
//!            [--threads N] [--out PATH] [--telemetry PATH]
//!            [--postmortem PATH]
//! ```
//!
//! A bounded [`FlightRecorder`] is always installed (the throughput
//! number is measured with the recorder on — that is the production
//! configuration), auto-dumping a postmortem JSONL to `--postmortem`
//! on the first `slo_alert`; `--telemetry` tees the full event stream
//! to a JSONL file on top. The run also self-checks the streaming HDR
//! histogram: fleet p50/p99 from per-response `latency_ns` must agree
//! with the exact sorted percentiles within one HDR bucket width.
//!
//! Writes `results/BENCH_serve_load.json` (the CI perf gate compares
//! it against the committed baseline via `tools/check_bench.sh`) and
//! exits non-zero on any violation, printing a repro line.

use std::sync::Arc;
use std::time::Instant;

use gddr_bench::{flag, parse_args, write_artifact};
use gddr_core::{DdrEnvConfig, GnnPolicy, GnnPolicyConfig};
use gddr_net::topology::zoo;
use gddr_net::Graph;
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_ser::Json;
use gddr_serve::{
    ChaosEngine, ControllerConfig, EngineFactory, FailoverConfig, Fault, FaultPlan, FleetConfig,
    FleetRequest, HealthState, HedgeConfig, InferenceEngine, PolicyEngine, PoolConfig,
    RecoveryReport, Rung, ShardOutcome, ShardRouter, SnapshotPolicy,
};
use gddr_telemetry::{bucket_width, FlightRecorder, JsonlSink, LogHistogram, Sink, TeeSink};
use gddr_traffic::gen::{bimodal, BimodalParams};

/// Demand-history length every shard's policy serves with.
const MEMORY: usize = 3;
/// Per-request logical inference budget.
const DEADLINE_MS: u64 = 10_000;

/// The topology zoo, by name — 11 shards, one per topology.
fn shard_names() -> &'static [&'static str] {
    &[
        "abilene", "nsfnet", "arpanet", "cesnet", "b4", "garr", "renater", "uninett", "geant",
        "janet", "sprint",
    ]
}

/// A small-but-real GNN engine factory for one shard. Each shard gets
/// its own deterministic weights (`seed ^ shard`).
fn gnn_factory(seed: u64, plan: Arc<FaultPlan>) -> EngineFactory {
    Arc::new(move |graph: &Graph| {
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = GnnPolicy::new(
            &GnnPolicyConfig {
                memory: MEMORY,
                latent: 8,
                hidden: 16,
                message_steps: 2,
                layer_norm: true,
            },
            -0.5,
            &mut rng,
        );
        let engine = PolicyEngine::new(policy, graph, MEMORY);
        Box::new(ChaosEngine::new(engine, Arc::clone(&plan))) as Box<dyn InferenceEngine>
    })
}

fn controller_config() -> ControllerConfig {
    ControllerConfig {
        // Hold a whole admission chunk; overflow shedding is the
        // chaos harness's job, not the throughput bench's.
        queue_capacity: 64,
        // The strict LP oracle cannot score 100k requests in CI time;
        // scoring has its own benches.
        score_responses: false,
        ..ControllerConfig::default()
    }
}

fn fleet_config(coalesce: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        coalesce_window: coalesce,
        threads,
        admit_chunk: coalesce.max(8),
    }
}

/// Builds the full fleet; `kill` names a shard whose engines panic on
/// every epoch with zero restart budget (the dying shard of the chaos
/// phase).
fn build_fleet(config: FleetConfig, seed: u64, kill: Option<&str>) -> ShardRouter {
    let mut router = ShardRouter::new(config).expect("fleet config is valid");
    for (i, name) in shard_names().iter().enumerate() {
        let graph = zoo::by_name(name).expect("zoo topology exists");
        let mut ctrl = controller_config();
        let plan = if kill == Some(*name) {
            ctrl.pool = PoolConfig {
                workers: 1,
                restart_budget: 0,
                ..PoolConfig::default()
            };
            Arc::new(FaultPlan::new().span(1..=4096, Fault::Panic))
        } else {
            Arc::new(FaultPlan::new())
        };
        router
            .add_shard(
                name,
                graph,
                DdrEnvConfig {
                    memory: MEMORY,
                    ..DdrEnvConfig::default()
                },
                ctrl,
                gnn_factory(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15), plan),
            )
            .expect("unique shard name");
    }
    router
}

/// A deterministic request stream: `ticks` epochs, `clients`
/// same-tick clients per shard per epoch (these coalesce into one
/// batched forward pass per shard per tick).
fn make_load(ticks: u64, clients: u64, seed: u64) -> Vec<FleetRequest> {
    let graphs: Vec<(String, usize)> = shard_names()
        .iter()
        .map(|n| (n.to_string(), zoo::by_name(n).unwrap().num_nodes()))
        .collect();
    let mut out = Vec::new();
    for tick in 0..ticks {
        for client in 0..clients {
            for (i, (name, n)) in graphs.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (tick << 24 | client << 8 | i as u64).wrapping_mul(0x100000001b3),
                );
                out.push(FleetRequest {
                    topology: name.clone(),
                    request: gddr_serve::EpochRequest {
                        epoch: tick,
                        demands: bimodal(*n, &BimodalParams::default(), &mut rng),
                        deadline_ms: DEADLINE_MS,
                    },
                });
            }
        }
    }
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Per-rung response counts and latency percentiles over a fleet run.
fn rung_report(outcomes: &[ShardOutcome]) -> Vec<Json> {
    let rungs = [Rung::Fresh, Rung::LastGood, Rung::Ecmp, Rung::ShortestPath];
    rungs
        .iter()
        .map(|rung| {
            let mut lat: Vec<u64> = outcomes
                .iter()
                .flat_map(|o| {
                    o.responses
                        .iter()
                        .zip(&o.latencies_ns)
                        .filter(|(r, _)| r.rung == *rung)
                        .map(|(_, l)| *l)
                })
                .collect();
            lat.sort_unstable();
            Json::obj([
                ("rung", Json::Str(rung.name().to_string())),
                ("count", Json::Num(lat.len() as f64)),
                ("p50_ns", Json::Num(percentile(&lat, 0.50) as f64)),
                ("p99_ns", Json::Num(percentile(&lat, 0.99) as f64)),
            ])
        })
        .collect()
}

fn main() {
    let args = parse_args(&[
        "requests",
        "seed",
        "clients",
        "coalesce",
        "threads",
        "out",
        "telemetry",
        "postmortem",
    ]);
    // The flight recorder stays on for every run — the reported
    // throughput is the with-recorder number. A full JSONL stream is
    // teed on top only when asked for.
    let postmortem = args
        .get("postmortem")
        .cloned()
        .unwrap_or_else(|| "results/serve_load_postmortem.jsonl".to_string());
    let recorder = Arc::new(FlightRecorder::with_dump(&postmortem, &["slo_alert"]));
    let mut sinks: Vec<Arc<dyn Sink>> = vec![recorder.clone()];
    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        sinks.push(Arc::new(sink));
    }
    gddr_telemetry::install(Arc::new(TeeSink::new(sinks)));
    let requests: usize = flag(&args, "requests", 100_000);
    let seed: u64 = flag(&args, "seed", 42);
    let clients: u64 = flag(&args, "clients", 8);
    let coalesce: usize = flag(&args, "coalesce", 8);
    let threads: usize = flag(&args, "threads", 4);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serve_load.json".to_string());

    let shards = shard_names().len();
    let per_tick = clients as usize * shards;
    let ticks = requests.div_ceil(per_tick) as u64;
    let mut violations: Vec<String> = Vec::new();

    // Phase 1: sustained load.
    let load = make_load(ticks, clients, seed);
    let total = load.len();
    println!("serve_load: {total} requests, {shards} shards, {clients} clients/tick, coalesce {coalesce}, {threads} threads");
    let fleet = build_fleet(fleet_config(coalesce, threads), seed, None);
    let start = Instant::now();
    let outcomes = fleet.run(&load).expect("all topologies are sharded");
    let elapsed = start.elapsed();
    let answered: usize = outcomes.iter().map(|o| o.responses.len()).sum();
    let req_per_s = answered as f64 / elapsed.as_secs_f64();
    if answered != total {
        violations.push(format!("load: {total} submitted but {answered} answered"));
    }
    let fresh: usize = outcomes
        .iter()
        .flat_map(|o| &o.responses)
        .filter(|r| r.rung == Rung::Fresh)
        .count();
    if fresh != total {
        violations.push(format!(
            "load: {} of {total} responses were not Fresh on the healthy path",
            total - fresh
        ));
    }
    println!(
        "serve_load: answered {answered} in {:.2}s — {:.0} req/s, all {}",
        elapsed.as_secs_f64(),
        req_per_s,
        if fresh == total { "Fresh" } else { "NOT fresh" }
    );

    // Streaming-HDR self-check: the log-bucketed histogram the SLO
    // engine keeps must agree with the exact sorted percentiles of the
    // same per-response latencies, within one bucket width (the HDR
    // quantile is a bucket upper bound, so it may only sit above).
    let mut exact: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    let mut hdr = LogHistogram::new();
    for &ns in &exact {
        hdr.record(ns);
    }
    exact.sort_unstable();
    let (hdr_p50, hdr_p99) = (hdr.quantile(0.50), hdr.quantile(0.99));
    let (exact_p50, exact_p99) = (percentile(&exact, 0.50), percentile(&exact, 0.99));
    for (label, est, truth) in [("p50", hdr_p50, exact_p50), ("p99", hdr_p99, exact_p99)] {
        if est < truth || est - truth > bucket_width(truth) {
            violations.push(format!(
                "hdr: {label} estimate {est}ns disagrees with exact {truth}ns by more than one bucket (width {})",
                bucket_width(truth)
            ));
        }
    }
    println!(
        "serve_load: hdr self-check — p50 {hdr_p50}ns / p99 {hdr_p99}ns vs exact {exact_p50}ns / {exact_p99}ns"
    );

    // Phase 2: batched == per-request, bit for bit.
    let identity_load = make_load(3, 4, seed ^ 0x1de57);
    let reference = build_fleet(fleet_config(1, threads), seed, None)
        .run(&identity_load)
        .expect("identity reference run");
    let batched = build_fleet(fleet_config(coalesce.max(2), threads), seed, None)
        .run(&identity_load)
        .expect("identity batched run");
    let mut identity_checked = 0usize;
    for (a, b) in reference.iter().zip(&batched) {
        if a.rung_sequence() != b.rung_sequence() {
            violations.push(format!(
                "identity: shard {} rung sequence diverged ({} vs {})",
                a.name,
                a.rung_sequence(),
                b.rung_sequence()
            ));
            continue;
        }
        for (x, y) in a.responses.iter().zip(&b.responses) {
            identity_checked += 1;
            if x.routing != y.routing {
                violations.push(format!(
                    "identity: shard {} epoch {} routing diverged between batched and per-request inference",
                    a.name, x.epoch
                ));
            }
        }
    }
    let identity_ok = violations.iter().all(|v| !v.starts_with("identity"));
    println!(
        "serve_load: identity check over {identity_checked} responses — {}",
        if identity_ok {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Phase 3: kill one shard's workers; the blast radius must stay
    // inside that shard. The injected panics are expected and
    // supervised — the default hook's backtraces would drown the
    // report.
    std::panic::set_hook(Box::new(|_| {}));
    let killed = "geant";
    let chaos_fleet = build_fleet(fleet_config(coalesce, threads), seed, Some(killed));
    let chaos_load = make_load(8, 4, seed ^ 0xc4a05);
    let chaos = chaos_fleet.run(&chaos_load).expect("chaos run");
    let mut killed_degraded = 0usize;
    let mut killed_total = 0usize;
    for o in &chaos {
        let is_killed = o.name == killed;
        let degraded = o.responses.iter().filter(|r| r.rung != Rung::Fresh).count();
        if is_killed {
            killed_total = o.responses.len();
            killed_degraded = degraded;
        } else if degraded > 0 {
            violations.push(format!(
                "chaos: healthy shard {} degraded {degraded} responses (blast radius escaped)",
                o.name
            ));
        }
    }
    if killed_degraded == 0 {
        violations.push(format!(
            "chaos: killed shard {killed} never degraded ({killed_total} responses)"
        ));
    }
    let killed_idx = chaos_fleet.route(killed).expect("killed shard exists");
    let killed_health = chaos_fleet
        .with_controller(killed_idx, |c| c.health())
        .expect("killed shard exists");
    let killed_alive = chaos_fleet
        .with_controller(killed_idx, |c| c.alive_workers())
        .expect("killed shard exists");
    if killed_alive != 0 {
        violations.push(format!(
            "chaos: killed shard still reports {killed_alive} live workers"
        ));
    }
    println!(
        "serve_load: chaos — shard {killed} degraded {killed_degraded}/{killed_total} (health {:?}), others Fresh",
        killed_health
    );

    // Phase 4: replicated self-healing. A small fleet — two replicas
    // behind each of three shards — with the geant primary's engines
    // panicking over a fixed epoch window on a one-worker pool with a
    // single restart. The set must hedge the in-window batches to the
    // standby (so the response stream stays overwhelmingly Fresh),
    // fail over, shadow-probe the demoted primary back to
    // eligibility, and answer every request. The whole phase runs
    // twice: rung and failover sequences are pure functions of the
    // seed and must replay bit-identically.
    let rep_names: [&str; 3] = ["cesnet", "abilene", "geant"];
    let rep_killed = "geant";
    let build_replicated = |seed: u64| -> ShardRouter {
        let mut router =
            ShardRouter::new(fleet_config(coalesce, threads)).expect("fleet config is valid");
        for (i, name) in rep_names.iter().enumerate() {
            let graph = zoo::by_name(name).expect("zoo topology exists");
            let mut ctrl = controller_config();
            let primary_plan = if *name == rep_killed {
                ctrl.pool = PoolConfig {
                    workers: 1,
                    restart_budget: 1,
                    ..PoolConfig::default()
                };
                Arc::new(FaultPlan::new().span(2..=6, Fault::Panic))
            } else {
                Arc::new(FaultPlan::new())
            };
            let shard_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
            router
                .add_replicated_shard(
                    name,
                    graph,
                    DdrEnvConfig {
                        memory: MEMORY,
                        ..DdrEnvConfig::default()
                    },
                    ctrl,
                    vec![
                        gnn_factory(shard_seed, primary_plan),
                        gnn_factory(shard_seed ^ 0x5eed, Arc::new(FaultPlan::new())),
                    ],
                    FailoverConfig {
                        failover_threshold: 3,
                        min_hold: 6,
                        hold_jitter: 2,
                        probe_window: 4,
                        probe_fresh_min: 0.75,
                        seed,
                    },
                    // Real engines report wall-clock inference cost,
                    // so the straggler threshold sits far above
                    // scheduler noise: only deterministic worker-side
                    // failures (the injected panics) trigger hedges,
                    // keeping the replay bit-identical. Logical-cost
                    // straggler hedging is the chaos harness's job.
                    HedgeConfig {
                        enabled: true,
                        threshold_ms: 5_000,
                    },
                )
                .expect("unique shard name");
        }
        router
    };
    let (rep_ticks, rep_clients) = (16u64, 3u64);
    let rep_sizes: Vec<(String, usize)> = rep_names
        .iter()
        .map(|n| (n.to_string(), zoo::by_name(n).unwrap().num_nodes()))
        .collect();
    let mut rep_load = Vec::new();
    for tick in 0..rep_ticks {
        for client in 0..rep_clients {
            for (i, (name, n)) in rep_sizes.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(
                    (seed ^ 0x5e1f)
                        ^ (tick << 24 | client << 8 | i as u64).wrapping_mul(0x100000001b3),
                );
                rep_load.push(FleetRequest {
                    topology: name.clone(),
                    request: gddr_serve::EpochRequest {
                        epoch: tick,
                        demands: bimodal(*n, &BimodalParams::default(), &mut rng),
                        deadline_ms: DEADLINE_MS,
                    },
                });
            }
        }
    }
    let rep_fleet = build_replicated(seed);
    let rep_out = rep_fleet.run(&rep_load).expect("replicated run");
    let rep_replay_fleet = build_replicated(seed);
    let rep_replay = rep_replay_fleet.run(&rep_load).expect("replicated replay");
    let rep_answered: usize = rep_out.iter().map(|o| o.responses.len()).sum();
    if rep_answered != rep_load.len() {
        violations.push(format!(
            "replicated: {} submitted but {rep_answered} answered",
            rep_load.len()
        ));
    }
    let rep_killed_idx = rep_fleet
        .route(rep_killed)
        .expect("replicated shard exists");
    let rep_stats = rep_fleet
        .with_replica_set(rep_killed_idx, |s| s.stats().clone())
        .expect("replicated shard exists");
    let rep_replay_stats = rep_replay_fleet
        .with_replica_set(rep_killed_idx, |s| s.stats().clone())
        .expect("replicated shard exists");
    let rep_seq = rep_stats.failover_sequence();
    let rep_deterministic = rep_seq == rep_replay_stats.failover_sequence()
        && rep_out
            .iter()
            .zip(&rep_replay)
            .all(|(a, b)| a.name == b.name && a.rung_sequence() == b.rung_sequence());
    if !rep_deterministic {
        violations.push(format!(
            "replicated: same-seed replay diverged (failover sequence [{rep_seq}] vs [{}])",
            rep_replay_stats.failover_sequence()
        ));
    }
    if rep_stats.failovers == 0 {
        violations.push(format!(
            "replicated: killed primary of {rep_killed} never failed over"
        ));
    }
    if rep_stats.recoveries == 0 {
        violations.push(format!(
            "replicated: demoted primary of {rep_killed} never recovered"
        ));
    }
    let mut rep_killed_fresh_ratio = 0.0;
    for o in &rep_out {
        let fresh = o.responses.iter().filter(|r| r.rung == Rung::Fresh).count();
        if o.name == rep_killed {
            rep_killed_fresh_ratio = fresh as f64 / o.responses.len().max(1) as f64;
        } else if fresh != o.responses.len() {
            violations.push(format!(
                "replicated: healthy shard {} served {} non-Fresh responses",
                o.name,
                o.responses.len() - fresh
            ));
        }
    }
    if rep_killed_fresh_ratio < 0.9 {
        violations.push(format!(
            "replicated: hedging + failover left only {:.0}% of {rep_killed} Fresh (want >= 90%)",
            rep_killed_fresh_ratio * 100.0
        ));
    }
    for name in rep_names {
        if name == rep_killed {
            continue;
        }
        let idx = rep_fleet.route(name).expect("replicated shard exists");
        let healthy_failovers = rep_fleet
            .with_replica_set(idx, |s| s.stats().failovers)
            .expect("replicated shard exists");
        if healthy_failovers != 0 {
            violations.push(format!(
                "replicated: healthy shard {name} failed over {healthy_failovers} times"
            ));
        }
    }
    println!(
        "serve_load: replicated — {rep_answered}/{} answered, shard {rep_killed}: {} failovers [{rep_seq}], {} hedges ({} wins), {} recoveries, {:.0}% Fresh, replay {}",
        rep_load.len(),
        rep_stats.failovers,
        rep_stats.hedges_fired,
        rep_stats.hedge_wins,
        rep_stats.recoveries,
        rep_killed_fresh_ratio * 100.0,
        if rep_deterministic {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    // Phase 5: recovery drill. A three-shard snapshot-enabled fleet
    // serves half its ticks, crashes (dropped with no shutdown hook),
    // and is rebuilt from the durable store: the restore must come
    // back warm with every shard's first response on the restored
    // LastGood rung. A second restart against a corrupted store must
    // degrade to a clean cold start that still serves.
    let drill_dir =
        std::env::temp_dir().join(format!("gddr-serve-load-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&drill_dir);
    let drill_names: [&str; 3] = ["cesnet", "abilene", "geant"];
    let build_drill = || -> ShardRouter {
        let mut router =
            ShardRouter::new(fleet_config(coalesce, threads)).expect("fleet config is valid");
        for (i, name) in drill_names.iter().enumerate() {
            let graph = zoo::by_name(name).expect("zoo topology exists");
            router
                .add_shard(
                    name,
                    graph,
                    DdrEnvConfig {
                        memory: MEMORY,
                        ..DdrEnvConfig::default()
                    },
                    controller_config(),
                    gnn_factory(
                        seed ^ (i as u64 + 21).wrapping_mul(0x9e3779b97f4a7c15),
                        Arc::new(FaultPlan::new()),
                    ),
                )
                .expect("unique shard name");
        }
        router
    };
    let drill_sizes: Vec<(String, usize)> = drill_names
        .iter()
        .map(|n| (n.to_string(), zoo::by_name(n).unwrap().num_nodes()))
        .collect();
    let drill_tick_load = |tick: u64| -> Vec<FleetRequest> {
        let mut batch = Vec::new();
        for client in 0..2u64 {
            for (i, (name, n)) in drill_sizes.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(
                    (seed ^ 0xd811)
                        ^ (tick << 24 | client << 8 | i as u64).wrapping_mul(0x100000001b3),
                );
                batch.push(FleetRequest {
                    topology: name.clone(),
                    request: gddr_serve::EpochRequest {
                        epoch: tick,
                        demands: bimodal(*n, &BimodalParams::default(), &mut rng),
                        deadline_ms: DEADLINE_MS,
                    },
                });
            }
        }
        batch
    };
    let drill_policy = SnapshotPolicy {
        every_runs: 1,
        warm_epochs: 2,
    };
    let drill_ticks = 8u64;
    let mut drill_submitted = 0usize;
    let mut drill_answered = 0usize;
    let mut drill_pre = build_drill();
    drill_pre
        .enable_snapshots(&drill_dir, drill_policy.clone())
        .expect("enable drill snapshots");
    for tick in 0..drill_ticks / 2 {
        let batch = drill_tick_load(tick);
        drill_submitted += batch.len();
        drill_answered += drill_pre
            .run(&batch)
            .expect("drill run")
            .iter()
            .map(|o| o.responses.len())
            .sum::<usize>();
    }
    drop(drill_pre);
    let mut drill_post = build_drill();
    drill_post
        .enable_snapshots(&drill_dir, drill_policy)
        .expect("enable drill snapshots");
    let restore_start = Instant::now();
    let drill_report = drill_post.recover_from();
    let restore_ms = restore_start.elapsed().as_secs_f64() * 1e3;
    let (drill_warm, drill_generation) = match &drill_report {
        RecoveryReport::Warm { generation, .. } => (true, *generation),
        RecoveryReport::Cold { error } => {
            violations.push(format!(
                "recovery_drill: restart came back cold ({error}) with an intact snapshot"
            ));
            (false, 0)
        }
    };
    let mut drill_first_rungs = String::new();
    for tick in drill_ticks / 2..drill_ticks {
        let batch = drill_tick_load(tick);
        drill_submitted += batch.len();
        let outs = drill_post.run(&batch).expect("drill continue");
        if tick == drill_ticks / 2 {
            for o in &outs {
                match o.responses.first() {
                    Some(r) if r.rung == Rung::LastGood => {}
                    Some(r) => violations.push(format!(
                        "recovery_drill: shard {} first post-restore rung {:?}, want LastGood",
                        o.name, r.rung
                    )),
                    None => violations
                        .push(format!("recovery_drill: shard {} answered nothing", o.name)),
                }
            }
            drill_first_rungs = outs
                .iter()
                .map(|o| format!("{}:{}", o.name, o.rung_sequence()))
                .collect::<Vec<_>>()
                .join(";");
        }
        drill_answered += outs.iter().map(|o| o.responses.len()).sum::<usize>();
    }
    // Corruption leg: tear every committed record, then restart. The
    // store must refuse (typed error, cold start) and the cold fleet
    // must still serve — never from restored state.
    for entry in std::fs::read_dir(&drill_dir).expect("read drill store") {
        let path = entry.expect("drill store entry").path();
        if path.extension().is_some_and(|e| e == "rec") {
            let bytes = std::fs::read(&path).expect("read record");
            std::fs::write(&path, &bytes[..bytes.len().min(10)]).expect("tear record");
        }
    }
    let mut drill_cold = build_drill();
    drill_cold
        .enable_snapshots(
            &drill_dir,
            SnapshotPolicy {
                every_runs: 1_000_000,
                warm_epochs: 2,
            },
        )
        .expect("enable drill snapshots");
    let cold_report = drill_cold.recover_from();
    let (corrupt_cold, cold_kind) = match &cold_report {
        RecoveryReport::Cold { error } => (true, error.kind_name().to_string()),
        RecoveryReport::Warm { generation, .. } => {
            violations.push(format!(
                "recovery_drill: corrupted store restored warm (generation {generation})"
            ));
            (false, String::new())
        }
    };
    let cold_batch = drill_tick_load(drill_ticks);
    drill_submitted += cold_batch.len();
    let cold_outs = drill_cold.run(&cold_batch).expect("drill cold serve");
    if cold_outs
        .iter()
        .flat_map(|o| &o.responses)
        .any(|r| r.rung == Rung::LastGood)
    {
        violations.push("recovery_drill: cold start served restored state".to_string());
    }
    drill_answered += cold_outs.iter().map(|o| o.responses.len()).sum::<usize>();
    if drill_answered != drill_submitted {
        violations.push(format!(
            "recovery_drill: {drill_submitted} submitted but {drill_answered} answered"
        ));
    }
    let _ = std::fs::remove_dir_all(&drill_dir);
    println!(
        "serve_load: recovery_drill — {} restore in {restore_ms:.1}ms (generation {drill_generation}), first rungs [{drill_first_rungs}], corrupt store {} ({cold_kind}), {drill_answered}/{drill_submitted} answered",
        if drill_warm { "warm" } else { "COLD" },
        if corrupt_cold { "cold-started" } else { "NOT refused" },
    );

    let _ = std::panic::take_hook();

    // The killed shard burns its error budget, so by here the chaos
    // phase must have tripped the always-on recorder into writing a
    // postmortem whose trigger is an slo_alert.
    let mut postmortem_alerts = 0usize;
    if !recorder.has_dumped() {
        violations.push(format!(
            "chaos: killed shard {killed} never tripped an slo_alert postmortem"
        ));
    } else {
        let text = std::fs::read_to_string(&postmortem).expect("read postmortem");
        match gddr_telemetry::parse_jsonl(&text) {
            Ok(events) => {
                postmortem_alerts = events
                    .iter()
                    .filter(|e| matches!(e, gddr_telemetry::Event::SloAlert { .. }))
                    .count();
                if postmortem_alerts == 0 {
                    violations.push("postmortem contains no slo_alert event".to_string());
                }
                println!(
                    "serve_load: postmortem {postmortem} — {} events, {postmortem_alerts} slo_alerts",
                    events.len()
                );
            }
            Err(e) => violations.push(format!("postmortem does not parse as JSONL events: {e}")),
        }
    }

    gddr_telemetry::counter_add("serve_load.requests", answered as u64);
    gddr_telemetry::counter_add("serve_load.violations", violations.len() as u64);

    let artifact = Json::obj([
        ("group", Json::Str("serve_load".to_string())),
        (
            "meta",
            Json::obj([
                ("bench", Json::Str("serve_load".to_string())),
                ("requests", Json::Num(total as f64)),
                ("shards", Json::Num(shards as f64)),
                ("clients", Json::Num(clients as f64)),
                ("coalesce", Json::Num(coalesce as f64)),
                ("threads", Json::Num(threads as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        ),
        (
            "throughput",
            Json::obj([
                ("req_per_s", Json::Num(req_per_s)),
                ("answered", Json::Num(answered as f64)),
                ("elapsed_ms", Json::Num(elapsed.as_millis() as f64)),
            ]),
        ),
        ("rungs", Json::Arr(rung_report(&outcomes))),
        (
            "hdr",
            Json::obj([
                ("p50_ns", Json::Num(hdr_p50 as f64)),
                ("p99_ns", Json::Num(hdr_p99 as f64)),
                ("exact_p50_ns", Json::Num(exact_p50 as f64)),
                ("exact_p99_ns", Json::Num(exact_p99 as f64)),
            ]),
        ),
        (
            "postmortem",
            Json::obj([
                ("path", Json::Str(postmortem.clone())),
                ("dumped", Json::Bool(recorder.has_dumped())),
                ("slo_alerts", Json::Num(postmortem_alerts as f64)),
            ]),
        ),
        (
            "identity",
            Json::obj([
                ("checked", Json::Num(identity_checked as f64)),
                ("bit_identical", Json::Bool(identity_ok)),
            ]),
        ),
        (
            "chaos",
            Json::obj([
                ("killed_shard", Json::Str(killed.to_string())),
                ("killed_degraded", Json::Num(killed_degraded as f64)),
                ("killed_responses", Json::Num(killed_total as f64)),
                (
                    "killed_unhealthy",
                    Json::Bool(killed_health != HealthState::Healthy),
                ),
                (
                    "healthy_shards_stayed_fresh",
                    Json::Bool(violations.iter().all(|v| !v.contains("blast radius"))),
                ),
            ]),
        ),
        (
            "replicated",
            Json::obj([
                ("shards", Json::Num(rep_names.len() as f64)),
                ("replicas_per_shard", Json::Num(2.0)),
                ("answered", Json::Num(rep_answered as f64)),
                ("killed_shard", Json::Str(rep_killed.to_string())),
                ("failovers", Json::Num(rep_stats.failovers as f64)),
                ("hedges_fired", Json::Num(rep_stats.hedges_fired as f64)),
                ("hedge_wins", Json::Num(rep_stats.hedge_wins as f64)),
                ("recoveries", Json::Num(rep_stats.recoveries as f64)),
                ("failover_sequence", Json::Str(rep_seq.clone())),
                ("deterministic", Json::Bool(rep_deterministic)),
                ("killed_fresh_ratio", Json::Num(rep_killed_fresh_ratio)),
            ]),
        ),
        (
            "recovery_drill",
            Json::obj([
                ("warm", Json::Bool(drill_warm)),
                ("generation", Json::Num(drill_generation as f64)),
                ("restore_ms", Json::Num(restore_ms)),
                ("first_rungs", Json::Str(drill_first_rungs.clone())),
                ("corrupt_cold", Json::Bool(corrupt_cold)),
                ("cold_kind", Json::Str(cold_kind.clone())),
                ("submitted", Json::Num(drill_submitted as f64)),
                ("answered", Json::Num(drill_answered as f64)),
            ]),
        ),
        (
            "violations",
            Json::Arr(
                violations
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    write_artifact(&out, &artifact.to_string());
    gddr_telemetry::uninstall();

    if violations.is_empty() {
        println!(
            "serve_load: ok ({answered} requests, {:.0} req/s)",
            req_per_s
        );
    } else {
        // Leave a postmortem behind for debugging even when no
        // slo_alert tripped the latch (first trigger still wins).
        recorder.dump_once("serve_load violations");
        for v in &violations {
            eprintln!("serve_load VIOLATION: {v}");
        }
        eprintln!("reproduce with:");
        eprintln!("  serve_load --requests {requests} --seed {seed} --clients {clients} --coalesce {coalesce} --threads {threads}");
        std::process::exit(1);
    }
}
