//! Regenerates **Fig. 6**: learning to route on a fixed graph.
//!
//! Trains the MLP baseline (Valadarsky et al.) and the GNN policy with
//! identical PPO budgets on Abilene (60-DM bimodal cyclic sequences,
//! cycle 10, memory 5; 7 training + 3 test sequences — the paper's
//! §VIII-D settings), then prints the bar heights: mean ratio between
//! achieved max-link-utilisation and the optimal, with the
//! shortest-path ratio as the dotted line. Lower is better.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin fig6_fixed_graph -- \
//!     --steps 30000 --seed 0 [--graph Abilene] [--memory 5] [--msg-steps 3]
//! ```
//!
//! `--memory` and `--msg-steps` drive ablations B and D from
//! DESIGN.md. The paper trains for 500k steps (~2 h); the default here
//! is 30k, which preserves the relative ordering (see EXPERIMENTS.md).

use std::sync::Arc;

use gddr_bench::{flag, parse_args};
use gddr_core::experiment::{fixed_graph, FixedGraphConfig};
use gddr_core::policies::GnnPolicyConfig;
use gddr_telemetry::{JsonlSink, Reporter};

fn main() {
    let args = parse_args(&[
        "steps",
        "seed",
        "graph",
        "memory",
        "msg-steps",
        "seq-len",
        "cycle",
        "json",
        "telemetry",
    ]);
    let mut config = FixedGraphConfig {
        graph_name: args
            .get("graph")
            .cloned()
            .unwrap_or_else(|| "Abilene".into()),
        train_steps: flag(&args, "steps", 30_000usize),
        seed: flag(&args, "seed", 0u64),
        ..Default::default()
    };
    let memory = flag(&args, "memory", 5usize);
    config.env.memory = memory;
    config.workload.seq_length = flag(&args, "seq-len", 60usize);
    config.workload.cycle = flag(&args, "cycle", 10usize);
    config.gnn = GnnPolicyConfig {
        memory,
        message_steps: flag(&args, "msg-steps", 3usize),
        ..GnnPolicyConfig::default()
    };

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }
    let reporter = Reporter::new("fig6");
    reporter.info(format!(
        "graph={} steps={} memory={} msg_steps={} (paper: 500k steps)",
        config.graph_name, config.train_steps, memory, config.gnn.message_steps
    ));
    let result = fixed_graph(&config);
    reporter.done();

    println!(
        "# Fig. 6 — learning to route on a fixed graph ({})",
        config.graph_name
    );
    println!("# bar heights: mean U_agent/U_opt on held-out sequences (lower is better)");
    println!("policy,mean_ratio,std_ratio");
    println!(
        "MLP,{:.4},{:.4}",
        result.mlp.eval.mean_ratio, result.mlp.eval.std_ratio
    );
    println!(
        "GNN,{:.4},{:.4}",
        result.gnn.eval.mean_ratio, result.gnn.eval.std_ratio
    );
    println!(
        "shortest_path(dotted),{:.4},{:.4}",
        result.shortest_path.mean_ratio, result.shortest_path.std_ratio
    );
    println!(
        "predict_then_route,{:.4},{:.4}",
        result.prediction.mean_ratio, result.prediction.std_ratio
    );

    if let Some(path) = args.get("json") {
        let json = gddr_bench::json::to_json(&result).expect("result serialises");
        gddr_bench::write_artifact(path, &json);
    }

    let sp = result.shortest_path.mean_ratio;
    println!("\n# shape check (paper expectations):");
    println!(
        "# learned policies beat shortest path: MLP {} | GNN {}",
        yesno(result.mlp.eval.mean_ratio < sp),
        yesno(result.gnn.eval.mean_ratio < sp)
    );
    println!(
        "# GNN at least as good as MLP: {}",
        yesno(result.gnn.eval.mean_ratio <= result.mlp.eval.mean_ratio + 0.02)
    );
    gddr_telemetry::uninstall();
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
