//! Scenario sweep: extends the Fig. 8 generalisation study across the
//! live-dynamics traffic regimes of the scenario engine.
//!
//! For each regime the sweep reports two complementary views:
//!
//! - **routing quality** — the mean and max `U_agent / U_ref` ratio of
//!   the policy's softmin routing over the regime's demand sequence.
//!   At zoo scale (cesnet) the reference is the exact LP optimum
//!   (`"lp_opt"`), matching fig8. On the synthetic hierarchical WANs
//!   (100 and 400 nodes) the LP is intractable, so the reference is
//!   unit-weight shortest-path routing (`"sp_routing"`) — ratios are
//!   then comparative, not optimality gaps, and the JSON labels them
//!   as such.
//! - **serve-side behaviour** — the matching dynamic chaos scenario
//!   ([`gddr_serve::scenario::run_dynamic_scenario`]) is run under the
//!   fleet and its p99 ladder-rung depth, answered/submitted counts
//!   and applied-event digest are recorded.
//!
//! The cesnet regimes use a policy PPO-trained in-process (like
//! `robustness_sweep`); the WAN regimes use an untrained policy of the
//! same shape the serving engines deploy — policies are
//! topology-shaped (`memory·n²` inputs), so a zoo-trained MLP cannot
//! transfer to a 400-node WAN.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin scenario_sweep -- \
//!     [--regimes diurnal_flash_crowd,big_wan_drain] [--steps 1200] \
//!     [--eval-steps 16] [--requests 88] [--seed 42] [--out PATH]
//! ```
//!
//! Writes `results/BENCH_scenario_sweep.json` and exits non-zero if
//! any ratio is non-finite, an LP-referenced regime dips below 1, or
//! a serve-side scenario violates its SLOs.

use gddr_bench::{flag, parse_args, write_artifact};
use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext};
use gddr_core::policies::MlpPolicy;
use gddr_lp::CachedOracle;
use gddr_net::topology::hierarchical::hierarchical_wan_sized;
use gddr_net::topology::zoo;
use gddr_net::Graph;
use gddr_rl::{FaultTolerance, Ppo, PpoConfig, TrainingLog};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_routing::baselines::shortest_path_routing;
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::softmin_routing;
use gddr_ser::Json;
use gddr_serve::chaos::scenario_seed;
use gddr_serve::engine::{InferenceEngine, PolicyEngine};
use gddr_serve::scenario::run_dynamic_scenario;
use gddr_serve::{EpochRequest, DEFAULT_DEADLINE_MS};
use gddr_telemetry::Reporter;
use gddr_traffic::gen::BimodalParams;
use gddr_traffic::scenario::{
    diurnal_flash_crowd, elephant_mice, ElephantMiceParams, FlashCrowdParams,
};
use gddr_traffic::sequence::noisy_cyclical;
use gddr_traffic::DemandMatrix;

/// What `U_agent` is measured against.
enum Reference {
    /// Exact multi-commodity-flow optimum (zoo scale only).
    LpOpt(Box<CachedOracle>),
    /// Unit-weight shortest-path routing (big WANs, where the LP is
    /// intractable).
    SpRouting,
}

impl Reference {
    fn label(&self) -> &'static str {
        match self {
            Reference::LpOpt(_) => "lp_opt",
            Reference::SpRouting => "sp_routing",
        }
    }
}

/// One regime's quality-side definition.
struct Regime {
    name: &'static str,
    graph: Graph,
    demands: Vec<DemandMatrix>,
    reference: Reference,
    policy: MlpPolicy,
    policy_label: &'static str,
    memory: usize,
}

/// Mean and max `U_agent / U_ref` over the regime's demand sequence,
/// serving each matrix through the same engine path the fleet uses.
fn quality_sweep(regime: &Regime) -> (f64, f64) {
    let env_cfg = DdrEnvConfig {
        memory: regime.memory,
        ..DdrEnvConfig::default()
    };
    let mut engine = PolicyEngine::new(regime.policy.clone(), &regime.graph, regime.memory);
    let sp = match regime.reference {
        Reference::SpRouting => Some(shortest_path_routing(
            &regime.graph,
            &vec![1.0; regime.graph.num_edges()],
        )),
        Reference::LpOpt(_) => None,
    };
    let mut history: Vec<DemandMatrix> = Vec::new();
    let mut ratio_sum = 0.0;
    let mut ratio_max = 0.0f64;
    for (i, dm) in regime.demands.iter().enumerate() {
        let req = EpochRequest {
            epoch: i as u64,
            demands: dm.clone(),
            deadline_ms: DEFAULT_DEADLINE_MS,
        };
        let reply = engine.infer(&req, &history);
        let weights = env_cfg
            .try_action_to_weights(&reply.action, regime.graph.num_edges())
            .expect("policy action has the right arity");
        let routing = softmin_routing(&regime.graph, &weights, &env_cfg.softmin)
            .expect("softmin routing on a connected graph");
        let u_agent = max_link_utilisation(&regime.graph, &routing, dm)
            .expect("agent routing covers all commodities")
            .u_max;
        let u_ref = match (&regime.reference, &sp) {
            (Reference::LpOpt(oracle), _) => oracle.u_opt(dm).expect("LP solves at zoo scale"),
            (Reference::SpRouting, Some(sp)) => {
                max_link_utilisation(&regime.graph, sp, dm)
                    .expect("sp routing covers all commodities")
                    .u_max
            }
            (Reference::SpRouting, None) => unreachable!(),
        };
        let ratio = if u_ref > 0.0 { u_agent / u_ref } else { 1.0 };
        ratio_sum += ratio;
        ratio_max = ratio_max.max(ratio);
        history.push(dm.clone());
        if history.len() > regime.memory {
            history.remove(0);
        }
    }
    (ratio_sum / regime.demands.len() as f64, ratio_max)
}

/// Trains the cesnet policy the zoo-scale regimes evaluate, exactly
/// like `robustness_sweep` but without failure injection.
fn train_cesnet_policy(g: &Graph, steps: usize, seed: u64, reporter: &Reporter) -> MlpPolicy {
    let mut rng = StdRng::seed_from_u64(seed);
    let train_seqs = standard_sequences(g, 2, 10, 5, &mut rng);
    let env_cfg = DdrEnvConfig {
        memory: 2,
        ..DdrEnvConfig::default()
    };
    let mut policy = MlpPolicy::new(2, g.num_nodes(), g.num_edges(), &[16], -0.7, &mut rng);
    let ctx = GraphContext::new(g.clone(), train_seqs);
    let mut env = DdrEnv::new(ctx, env_cfg);
    let mut ppo = Ppo::new(PpoConfig {
        n_steps: 32,
        minibatch_size: 16,
        epochs: 2,
        learning_rate: 1e-3,
        ..Default::default()
    });
    let mut log = TrainingLog::default();
    let report = ppo
        .train_resilient(
            &mut env,
            &mut policy,
            steps,
            &mut rng,
            &mut log,
            &FaultTolerance::default(),
            None,
        )
        .expect("training run");
    reporter.info(format!(
        "trained cesnet policy: {} good updates, {} skipped, {} rollbacks",
        report.good_updates, report.skipped_updates, report.rollbacks
    ));
    policy
}

fn main() {
    let args = parse_args(&["regimes", "steps", "eval-steps", "requests", "seed", "out"]);
    let steps = flag(&args, "steps", 1_200usize);
    let eval_steps = flag(&args, "eval-steps", 16usize);
    let requests = flag(&args, "requests", 88usize).max(88);
    let seed = flag(&args, "seed", 42u64);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_scenario_sweep.json".to_string());
    let all = [
        "diurnal_flash_crowd",
        "rolling_maintenance",
        "flap_storm",
        "big_wan_drain",
    ];
    let selected: Vec<String> = match args.get("regimes") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => all.iter().map(|s| s.to_string()).collect(),
    };
    for name in &selected {
        assert!(
            all.contains(&name.as_str()),
            "unknown regime '{name}' (known: {})",
            all.join(",")
        );
    }

    let reporter = Reporter::new("scenario_sweep");
    let cesnet = zoo::cesnet();
    let needs_cesnet = selected
        .iter()
        .any(|n| n == "diurnal_flash_crowd" || n == "rolling_maintenance");
    let trained = if needs_cesnet {
        Some(train_cesnet_policy(&cesnet, steps, seed, &reporter))
    } else {
        None
    };

    let mut results = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    println!("# Scenario sweep — per-regime U_agent/U_ref and serve-side p99 rung depth");
    println!("regime,nodes,reference,policy,mean_ratio,max_ratio,serve_p99_depth,serve_answered");
    for name in &selected {
        let mut rng = StdRng::seed_from_u64(scenario_seed(seed, name) ^ 0x5eed);
        let regime = match name.as_str() {
            "diurnal_flash_crowd" => {
                let n = cesnet.num_nodes();
                Regime {
                    name: "diurnal_flash_crowd",
                    graph: cesnet.clone(),
                    demands: diurnal_flash_crowd(
                        n,
                        eval_steps,
                        12,
                        0.3,
                        600.0 * (n * (n - 1)) as f64,
                        &FlashCrowdParams::default(),
                        &mut rng,
                    ),
                    reference: Reference::LpOpt(Box::new(CachedOracle::new(cesnet.clone()))),
                    policy: trained.clone().expect("cesnet policy trained"),
                    policy_label: "trained",
                    memory: 2,
                }
            }
            "rolling_maintenance" => {
                let n = cesnet.num_nodes();
                Regime {
                    name: "rolling_maintenance",
                    graph: cesnet.clone(),
                    demands: noisy_cyclical(
                        n,
                        6,
                        eval_steps,
                        0.1,
                        &BimodalParams::default(),
                        &mut rng,
                    ),
                    reference: Reference::LpOpt(Box::new(CachedOracle::new(cesnet.clone()))),
                    policy: trained.clone().expect("cesnet policy trained"),
                    policy_label: "trained",
                    memory: 2,
                }
            }
            "flap_storm" => {
                let g = hierarchical_wan_sized(100, &mut StdRng::seed_from_u64(seed ^ 0x1a57));
                let n = g.num_nodes();
                let policy = MlpPolicy::new(
                    2,
                    n,
                    g.num_edges(),
                    &[8],
                    -0.5,
                    &mut StdRng::seed_from_u64(seed),
                );
                Regime {
                    name: "flap_storm",
                    graph: g,
                    demands: elephant_mice(n, eval_steps, &ElephantMiceParams::default(), &mut rng),
                    reference: Reference::SpRouting,
                    policy,
                    policy_label: "untrained",
                    memory: 2,
                }
            }
            "big_wan_drain" => {
                let g = hierarchical_wan_sized(400, &mut StdRng::seed_from_u64(seed ^ 0xb16));
                let n = g.num_nodes();
                let policy = MlpPolicy::new(
                    1,
                    n,
                    g.num_edges(),
                    &[4],
                    -0.5,
                    &mut StdRng::seed_from_u64(seed),
                );
                Regime {
                    name: "big_wan_drain",
                    graph: g,
                    demands: elephant_mice(
                        n,
                        eval_steps,
                        &ElephantMiceParams {
                            elephants: 12,
                            ..ElephantMiceParams::default()
                        },
                        &mut rng,
                    ),
                    reference: Reference::SpRouting,
                    policy,
                    policy_label: "untrained",
                    memory: 1,
                }
            }
            _ => unreachable!("regimes validated above"),
        };

        let (mean_ratio, max_ratio) = quality_sweep(&regime);
        if !mean_ratio.is_finite() || !max_ratio.is_finite() {
            failures.push(format!("{name}: non-finite quality ratio"));
        }
        if matches!(regime.reference, Reference::LpOpt(_)) && mean_ratio < 1.0 - 1e-6 {
            failures.push(format!(
                "{name}: mean U_agent/U_opt {mean_ratio:.4} below 1 (beat the LP optimum?)"
            ));
        }

        let serve = run_dynamic_scenario(name, scenario_seed(seed, name), requests)
            .expect("dynamic scenario runs");
        if !serve.passed() {
            for v in &serve.violations {
                failures.push(format!("{name} (serve): {v}"));
            }
        }

        println!(
            "{},{},{},{},{:.4},{:.4},{},{}",
            regime.name,
            regime.graph.num_nodes(),
            regime.reference.label(),
            regime.policy_label,
            mean_ratio,
            max_ratio,
            serve.p99_depth,
            serve.answered
        );
        results.push(Json::obj([
            ("regime", Json::Str(regime.name.to_string())),
            ("nodes", Json::Num(regime.graph.num_nodes() as f64)),
            ("edges", Json::Num(regime.graph.num_edges() as f64)),
            ("reference", Json::Str(regime.reference.label().to_string())),
            ("policy", Json::Str(regime.policy_label.to_string())),
            ("eval_steps", Json::Num(regime.demands.len() as f64)),
            ("mean_ratio", Json::Num(mean_ratio)),
            ("max_ratio", Json::Num(max_ratio)),
            (
                "serve",
                Json::obj([
                    ("submitted", Json::Num(serve.submitted as f64)),
                    ("answered", Json::Num(serve.answered as f64)),
                    ("p99_depth", Json::Num(serve.p99_depth as f64)),
                    ("failovers", Json::Num(serve.failovers as f64)),
                    ("event_sequence", Json::Str(serve.event_sequence.clone())),
                    ("passed", Json::Bool(serve.passed())),
                ]),
            ),
        ]));
    }

    let artifact = Json::obj([
        ("seed", Json::Num(seed as f64)),
        ("train_steps", Json::Num(steps as f64)),
        ("eval_steps", Json::Num(eval_steps as f64)),
        ("serve_requests", Json::Num(requests as f64)),
        ("regimes", Json::Arr(results)),
        (
            "failures",
            Json::Arr(
                failures
                    .iter()
                    .map(|f| Json::Str(f.clone()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    write_artifact(&out, &artifact.to_string());
    reporter.done();

    if failures.is_empty() {
        println!("# scenario sweep: {} regimes ok", selected.len());
    } else {
        for f in &failures {
            eprintln!("scenario_sweep FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
