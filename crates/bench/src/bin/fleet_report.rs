//! Renders a fleet trace (JSONL telemetry with request-scoped trace
//! events) into an operator report: per-shard latency tables from
//! mergeable HDR histograms, SLO alert summaries, and admission →
//! inference → response waterfalls for the slowest requests.
//!
//! The report doubles as CI's trace-completeness gate: every traced
//! response must reconstruct into a *complete* waterfall (exactly one
//! `fleet.admitted` and one `fleet.response` annotation per trace id),
//! and the run fails if the complete fraction drops below
//! `--min-complete` (default 0.99).
//!
//! ```text
//! fleet_report --trace trace.jsonl [--min-complete F] [--top N]
//!              [--out PATH]
//! ```
//!
//! Writes `results/FLEET_report.json` and exits non-zero on any
//! violation, printing a repro line.

use std::collections::BTreeMap;

use gddr_bench::{flag, parse_args, write_artifact};
use gddr_ser::Json;
use gddr_telemetry::{parse_jsonl, Event, HdrSnapshot, LogHistogram};

/// Free-form key/value attributes as they appear on trace events.
type Attrs = Vec<(String, String)>;

/// One reconstructed request: everything the trace stream said about a
/// single trace id.
#[derive(Debug, Default)]
struct Trace {
    shard: u64,
    epoch: u64,
    /// `fleet.admitted` timestamps (µs since telemetry epoch).
    admitted: Vec<(u64, Attrs)>,
    /// `fleet.response` timestamps and attrs.
    response: Vec<(u64, Attrs)>,
    /// Timed phases (`serve.infer`), as `(name, start_us, dur_ns, attrs)`.
    spans: Vec<(String, u64, u64, Attrs)>,
}

impl Trace {
    /// A waterfall is complete when it has exactly one admission and
    /// exactly one response marker.
    fn is_complete(&self) -> bool {
        self.admitted.len() == 1 && self.response.len() == 1
    }

    /// Attribute lookup on the response marker.
    fn response_attr(&self, key: &str) -> Option<&str> {
        self.response
            .first()
            .and_then(|(_, attrs)| attr(attrs, key))
    }

    /// End-to-end latency the controller stamped on the response.
    fn latency_ns(&self) -> Option<u64> {
        self.response_attr("latency_ns")?.parse().ok()
    }
}

fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// Folds the event stream into per-trace records, keyed by trace id.
fn reconstruct(events: &[Event]) -> BTreeMap<u64, Trace> {
    let mut traces: BTreeMap<u64, Trace> = BTreeMap::new();
    for event in events {
        match event {
            Event::TraceAnnotation {
                trace_id,
                shard,
                name,
                at_us,
                attrs,
            } => {
                let t = traces.entry(*trace_id).or_default();
                t.shard = *shard;
                match name.as_str() {
                    "fleet.admitted" => {
                        if let Some(epoch) = attr(attrs, "epoch").and_then(|v| v.parse().ok()) {
                            t.epoch = epoch;
                        }
                        t.admitted.push((*at_us, attrs.clone()));
                    }
                    "fleet.response" => t.response.push((*at_us, attrs.clone())),
                    // Unknown markers still belong to the trace; keep
                    // them as zero-duration spans so waterfalls show
                    // everything the stream recorded.
                    _ => t.spans.push((name.clone(), *at_us, 0, attrs.clone())),
                }
            }
            Event::TraceSpan {
                trace_id,
                shard,
                name,
                start_us,
                dur_ns,
                attrs,
            } => {
                let t = traces.entry(*trace_id).or_default();
                t.shard = *shard;
                t.spans
                    .push((name.clone(), *start_us, *dur_ns, attrs.clone()));
            }
            _ => {}
        }
    }
    traces
}

/// Prints one waterfall: offsets are µs relative to admission.
fn print_waterfall(id: u64, t: &Trace) {
    let (admitted_us, admit_attrs) = &t.admitted[0];
    let (response_us, resp_attrs) = &t.response[0];
    let total = t.latency_ns().unwrap_or(0);
    println!(
        "  trace {id} shard {} epoch {} — {} end to end",
        t.shard,
        t.epoch,
        fmt_ms(total)
    );
    let offset = |us: u64| format!("+{:9.3} ms", us.saturating_sub(*admitted_us) as f64 / 1e3);
    let render_attrs = |attrs: &[(String, String)]| {
        attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "    {}  fleet.admitted   {}",
        offset(*admitted_us),
        render_attrs(admit_attrs)
    );
    let mut spans = t.spans.clone();
    spans.sort_by_key(|(_, start_us, _, _)| *start_us);
    for (name, start_us, dur_ns, attrs) in &spans {
        println!(
            "    {}  {name:16} [{}] {}",
            offset(*start_us),
            fmt_ms(*dur_ns),
            render_attrs(attrs)
        );
    }
    println!(
        "    {}  fleet.response   {}",
        offset(*response_us),
        render_attrs(resp_attrs)
    );
}

/// Per-shard aggregates over complete traces.
#[derive(Default)]
struct ShardStats {
    latency: Option<LogHistogram>,
    traces: u64,
    fresh: u64,
    shed: u64,
}

fn main() {
    let args = parse_args(&["trace", "min-complete", "top", "out"]);
    let path = args
        .get("trace")
        .expect("--trace <trace.jsonl> is required");
    let min_complete: f64 = flag(&args, "min-complete", 0.99);
    let top: usize = flag(&args, "top", 3);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/FLEET_report.json".to_string());

    let text = std::fs::read_to_string(path).expect("read trace file");
    let events = parse_jsonl(&text).unwrap_or_else(|e| panic!("malformed trace: {e}"));
    let traces = reconstruct(&events);

    let mut violations: Vec<String> = Vec::new();

    // Completeness gate: the traced-response population is every trace
    // id a rung_served event referenced, plus every id that emitted
    // any trace event — so dropped admissions and dropped responses
    // both count against the gate.
    let mut population: std::collections::BTreeSet<u64> = traces.keys().copied().collect();
    for event in &events {
        if let Event::RungServed { trace, .. } = event {
            if *trace != 0 {
                population.insert(*trace);
            }
        }
    }
    let complete = traces.values().filter(|t| t.is_complete()).count();
    let total = population.len();
    let fraction = if total == 0 {
        0.0
    } else {
        complete as f64 / total as f64
    };
    if total == 0 {
        violations.push("no traced requests found in the stream".to_string());
    } else if fraction < min_complete {
        violations.push(format!(
            "only {complete}/{total} traces ({:.2}%) reconstruct into complete waterfalls (gate {:.2}%)",
            fraction * 100.0,
            min_complete * 100.0
        ));
    }
    for (id, t) in &traces {
        if t.admitted.len() > 1 || t.response.len() > 1 {
            violations.push(format!(
                "trace {id}: {} admissions, {} responses (expected exactly one of each)",
                t.admitted.len(),
                t.response.len()
            ));
        }
    }

    // Per-shard latency tables from the response markers' latency_ns.
    let mut shards: BTreeMap<u64, ShardStats> = BTreeMap::new();
    for (id, t) in traces.iter().filter(|(_, t)| t.is_complete()) {
        let stats = shards.entry(t.shard).or_default();
        stats.traces += 1;
        match t.latency_ns() {
            Some(ns) => stats
                .latency
                .get_or_insert_with(LogHistogram::new)
                .record(ns),
            None => violations.push(format!("trace {id}: response has no latency_ns attr")),
        }
        if t.response_attr("rung") == Some("fresh") {
            stats.fresh += 1;
        }
        if t.response_attr("shed") == Some("true") {
            stats.shed += 1;
        }
    }

    // SLO alerts present in the stream, per shard.
    let mut alerts: BTreeMap<u64, u64> = BTreeMap::new();
    for event in &events {
        if let Event::SloAlert { shard, .. } = event {
            *alerts.entry(*shard).or_insert(0) += 1;
        }
    }

    println!(
        "fleet_report: {} events, {total} traced requests, {complete} complete waterfalls ({:.2}%)",
        events.len(),
        fraction * 100.0
    );
    println!("  shard   traces     p50         p99         mean        fresh%   shed  alerts");
    let mut fleet = HdrSnapshot::default();
    let mut shard_rows: Vec<Json> = Vec::new();
    for (shard, stats) in &shards {
        let snap = stats
            .latency
            .as_ref()
            .map(|h| h.snapshot())
            .unwrap_or_default();
        fleet.merge(&snap);
        let fresh_pct = 100.0 * stats.fresh as f64 / stats.traces.max(1) as f64;
        println!(
            "  {shard:>5}   {:>6}   {:>10}  {:>10}  {:>10}  {fresh_pct:>6.2}  {:>5}  {:>6}",
            stats.traces,
            fmt_ms(snap.quantile(0.50)),
            fmt_ms(snap.quantile(0.99)),
            fmt_ms(snap.mean() as u64),
            stats.shed,
            alerts.get(shard).copied().unwrap_or(0)
        );
        shard_rows.push(Json::obj([
            ("shard", Json::Num(*shard as f64)),
            ("traces", Json::Num(stats.traces as f64)),
            ("p50_ns", Json::Num(snap.quantile(0.50) as f64)),
            ("p99_ns", Json::Num(snap.quantile(0.99) as f64)),
            ("mean_ns", Json::Num(snap.mean())),
            ("fresh", Json::Num(stats.fresh as f64)),
            ("shed", Json::Num(stats.shed as f64)),
            (
                "slo_alerts",
                Json::Num(alerts.get(shard).copied().unwrap_or(0) as f64),
            ),
        ]));
    }
    println!(
        "  fleet (merged): {} responses, p50 {}, p99 {}",
        fleet.count,
        fmt_ms(fleet.quantile(0.50)),
        fmt_ms(fleet.quantile(0.99))
    );

    // Slowest complete traces, rendered as waterfalls.
    let mut slowest: Vec<(u64, &Trace)> = traces
        .iter()
        .filter(|(_, t)| t.is_complete() && t.latency_ns().is_some())
        .map(|(id, t)| (*id, t))
        .collect();
    slowest.sort_by_key(|(_, t)| std::cmp::Reverse(t.latency_ns().unwrap_or(0)));
    if top > 0 && !slowest.is_empty() {
        println!("fleet_report: {} slowest requests:", top.min(slowest.len()));
        for (id, t) in slowest.iter().take(top) {
            print_waterfall(*id, t);
        }
    }

    let artifact = Json::obj([
        ("group", Json::Str("fleet_report".to_string())),
        (
            "completeness",
            Json::obj([
                ("traced", Json::Num(total as f64)),
                ("complete", Json::Num(complete as f64)),
                ("fraction", Json::Num(fraction)),
                ("gate", Json::Num(min_complete)),
            ]),
        ),
        ("shards", Json::Arr(shard_rows)),
        (
            "fleet",
            Json::obj([
                ("responses", Json::Num(fleet.count as f64)),
                ("p50_ns", Json::Num(fleet.quantile(0.50) as f64)),
                ("p99_ns", Json::Num(fleet.quantile(0.99) as f64)),
            ]),
        ),
        ("slo_alerts", Json::Num(alerts.values().sum::<u64>() as f64)),
        (
            "violations",
            Json::Arr(
                violations
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    write_artifact(&out, &artifact.to_string());

    if violations.is_empty() {
        println!("fleet_report: ok ({complete} complete waterfalls)");
    } else {
        for v in &violations {
            eprintln!("fleet_report VIOLATION: {v}");
        }
        eprintln!("reproduce with:");
        eprintln!("  fleet_report --trace {path} --min-complete {min_complete}");
        std::process::exit(1);
    }
}
