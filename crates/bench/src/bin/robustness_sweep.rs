//! Fig. 8-style robustness sweep under link failures: trains a small
//! MLP agent with per-episode link-failure injection, then evaluates
//! the mean `U_agent / U_opt` ratio as `k` random links fail per
//! episode (`k = 0..=max-failures`), against the uniform-weights
//! baseline on the same degraded topologies. Failures are
//! connectivity-preserving and seeded, so the sweep is reproducible.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin robustness_sweep -- \
//!     --steps 2000 --seed 0 --max-failures 3 --episodes 5 \
//!     [--min-failures 0] [--eval-seed N] [--topology cesnet|hierwan:N] \
//!     [--memory 2]
//! ```
//!
//! `--topology` accepts any zoo name (`cesnet`, `abilene`, …) or
//! `hierwan:N` for a seeded N-node synthetic hierarchical WAN;
//! `--eval-seed` decouples the evaluation stream from the training
//! seed (defaults to `seed + 1`, the historical behaviour);
//! `--min-failures` restricts the sweep to `k = min..=max`, which CI
//! uses to replay a single point cheaply.

use std::sync::Arc;

use gddr_bench::{flag, parse_args};
use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, FailureInjector, GraphContext};
use gddr_core::policies::MlpPolicy;
use gddr_rl::{Env, FaultTolerance, Policy, Ppo, PpoConfig, TrainingLog};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_telemetry::{JsonlSink, Reporter};

/// Mean per-step ratio and mean links removed over `episodes` episodes
/// with `k` injected failures, under `act` (a raw action chooser).
fn sweep_point(
    g: &gddr_net::Graph,
    env_cfg: &DdrEnvConfig,
    sequences: &[Vec<gddr_traffic::DemandMatrix>],
    k: usize,
    episodes: usize,
    seed: u64,
    mut act: impl FnMut(&gddr_core::DdrObs, &mut StdRng) -> Vec<f64>,
) -> (f64, f64) {
    let ctx = GraphContext::new(g.clone(), sequences.to_vec());
    let mut env = DdrEnv::with_failures(ctx, *env_cfg, FailureInjector::from_seed(k, seed));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratio_sum = 0.0;
    let mut steps = 0usize;
    let mut removed_sum = 0usize;
    for _ in 0..episodes {
        let mut obs = env.reset(&mut rng);
        removed_sum += env.removed_links();
        loop {
            let action = act(&obs, &mut rng);
            let s = env.step(&action, &mut rng);
            ratio_sum += -s.reward;
            steps += 1;
            obs = s.obs;
            if s.done {
                break;
            }
        }
    }
    (
        ratio_sum / steps as f64,
        removed_sum as f64 / episodes as f64,
    )
}

fn main() {
    let args = parse_args(&[
        "steps",
        "seed",
        "max-failures",
        "min-failures",
        "episodes",
        "train-failures",
        "eval-seed",
        "topology",
        "memory",
        "telemetry",
    ]);
    let steps = flag(&args, "steps", 2_000usize);
    let seed = flag(&args, "seed", 0u64);
    let max_failures = flag(&args, "max-failures", 3usize);
    let min_failures = flag(&args, "min-failures", 0usize);
    let episodes = flag(&args, "episodes", 5usize);
    let train_failures = flag(&args, "train-failures", 1usize);
    let eval_seed = flag(&args, "eval-seed", seed + 1);
    let memory = flag(&args, "memory", 2usize);
    let topology = args.get("topology").map(String::as_str).unwrap_or("cesnet");
    assert!(
        min_failures <= max_failures,
        "--min-failures must not exceed --max-failures"
    );

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }
    let reporter = Reporter::new("robustness_sweep");

    let g = match topology.strip_prefix("hierwan:") {
        Some(n) => {
            let nodes: usize = n.parse().expect("hierwan:N needs a numeric node count");
            gddr_net::topology::hierarchical::hierarchical_wan_sized(
                nodes,
                &mut StdRng::seed_from_u64(seed ^ 0x77a0),
            )
        }
        None => gddr_net::topology::zoo::by_name(topology)
            .unwrap_or_else(|| panic!("unknown topology '{topology}'")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let train_seqs = standard_sequences(&g, 2, 10, 5, &mut rng);
    let eval_seqs = standard_sequences(&g, 2, 10, 5, &mut rng);
    let env_cfg = DdrEnvConfig {
        memory,
        ..Default::default()
    };

    // Train with failure injection active, through the fault-tolerant
    // loop: the agent sees degraded topologies from the start.
    reporter.info(format!(
        "training {steps} steps with {train_failures} injected failure(s) per episode"
    ));
    let mut policy = MlpPolicy::new(memory, g.num_nodes(), g.num_edges(), &[16], -0.7, &mut rng);
    {
        let ctx = GraphContext::new(g.clone(), train_seqs.clone());
        let injector = FailureInjector::new(train_failures, rng.fork());
        let mut env = DdrEnv::with_failures(ctx, env_cfg, injector);
        let mut ppo = Ppo::new(PpoConfig {
            n_steps: 32,
            minibatch_size: 16,
            epochs: 2,
            learning_rate: 1e-3,
            ..Default::default()
        });
        let mut log = TrainingLog::default();
        let report = ppo
            .train_resilient(
                &mut env,
                &mut policy,
                steps,
                &mut rng,
                &mut log,
                &FaultTolerance::default(),
                None,
            )
            .expect("training run");
        reporter.info(format!(
            "trained: {} good updates, {} skipped, {} rollbacks",
            report.good_updates, report.skipped_updates, report.rollbacks
        ));
    }

    println!("# Robustness sweep — mean U_agent/U_opt per injected link failures");
    println!("failures,mean_links_removed,agent_mean_ratio,uniform_mean_ratio");
    let mut agent_ratios = Vec::new();
    for k in min_failures..=max_failures {
        let (agent, removed) = sweep_point(
            &g,
            &env_cfg,
            &eval_seqs,
            k,
            episodes,
            eval_seed + k as u64,
            |obs, _| policy.act_greedy(obs),
        );
        let (uniform, _) = sweep_point(
            &g,
            &env_cfg,
            &eval_seqs,
            k,
            episodes,
            eval_seed + k as u64,
            |obs, _| vec![0.0; obs.structure.num_edges],
        );
        println!("{k},{removed:.2},{agent:.4},{uniform:.4}");
        agent_ratios.push(agent);
    }
    reporter.done();
    gddr_telemetry::uninstall();

    println!("\n# shape check:");
    let all_finite = agent_ratios
        .iter()
        .all(|r| r.is_finite() && *r >= 1.0 - 1e-6);
    println!(
        "# agent ratios finite and >= 1 under all failure levels: {}",
        if all_finite { "yes" } else { "NO" }
    );
    if !all_finite {
        std::process::exit(1);
    }
}
