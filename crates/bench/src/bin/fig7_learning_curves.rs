//! Regenerates **Fig. 7**: learning curves for the MLP and GNN agents.
//!
//! Same training setup as Fig. 6; prints the mean total reward per
//! episode (smoothed over a window) as CSV series for both agents.
//! Higher is better; the paper's observation is that both curves rise
//! and the GNN plateaus no later than the MLP.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin fig7_learning_curves -- \
//!     --steps 30000 --seed 0 [--window 10]
//! ```

use std::sync::Arc;

use gddr_bench::{flag, parse_args};
use gddr_core::experiment::{fixed_graph, FixedGraphConfig};
use gddr_telemetry::{JsonlSink, Reporter};

fn main() {
    let args = parse_args(&[
        "steps",
        "seed",
        "window",
        "seq-len",
        "cycle",
        "json",
        "telemetry",
    ]);
    let mut config = FixedGraphConfig {
        train_steps: flag(&args, "steps", 30_000usize),
        seed: flag(&args, "seed", 0u64),
        ..Default::default()
    };
    config.workload.seq_length = flag(&args, "seq-len", 60usize);
    config.workload.cycle = flag(&args, "cycle", 10usize);
    let window = flag(&args, "window", 10usize);

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }
    let reporter = Reporter::new("fig7");
    reporter.info(format!(
        "graph={} steps={} window={}",
        config.graph_name, config.train_steps, window
    ));
    let result = fixed_graph(&config);
    reporter.done();

    println!("# Fig. 7 — learning curves (mean episode reward, window {window})");
    println!("agent,env_step,mean_episode_reward");
    for (name, log) in [("MLP", &result.mlp.log), ("GNN", &result.gnn.log)] {
        for (step, reward) in log.smoothed_curve(window) {
            println!("{name},{step},{reward:.4}");
        }
    }

    if let Some(path) = args.get("json") {
        let json = gddr_bench::json::to_json(&result).expect("result serialises");
        gddr_bench::write_artifact(path, &json);
    }

    let mlp_curve = result.mlp.log.smoothed_curve(window);
    let gnn_curve = result.gnn.log.smoothed_curve(window);
    let improved =
        |c: &[(usize, f64)]| -> bool { c.len() >= 2 && c.last().unwrap().1 > c.first().unwrap().1 };
    println!("\n# shape check (paper expectations):");
    println!("# MLP curve rises: {}", yesno(improved(&mlp_curve)));
    println!("# GNN curve rises: {}", yesno(improved(&gnn_curve)));
    let final_gnn = gnn_curve.last().map(|x| x.1).unwrap_or(f64::NAN);
    let final_mlp = mlp_curve.last().map(|x| x.1).unwrap_or(f64::NAN);
    println!(
        "# GNN final reward >= MLP final reward: {} ({final_gnn:.2} vs {final_mlp:.2})",
        yesno(final_gnn >= final_mlp - 1.0)
    );
    gddr_telemetry::uninstall();
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
