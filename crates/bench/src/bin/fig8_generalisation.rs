//! Regenerates **Fig. 8**: generalising to unseen graphs.
//!
//! Trains the one-shot GNN and the Iterative GNN on a mixture of
//! topologies between half and double the size of Abilene, then
//! evaluates on (a) entirely different held-out graphs and (b) Abilene
//! with one or two random node/edge additions or deletions — the
//! paper's two bar groups, with shortest-path routing as the dotted
//! line.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin fig8_generalisation -- \
//!     --steps 20000 --iter-steps 40000 --seed 0 [--variants 4] [--edits 2]
//! ```

use std::sync::Arc;

use gddr_bench::{flag, parse_args};
use gddr_core::experiment::{generalisation, GeneralisationConfig};
use gddr_telemetry::{JsonlSink, Reporter};

fn main() {
    let args = parse_args(&[
        "steps",
        "iter-steps",
        "seed",
        "variants",
        "edits",
        "seq-len",
        "json",
        "telemetry",
    ]);
    let mut config = GeneralisationConfig {
        train_steps: flag(&args, "steps", 20_000usize),
        train_steps_iterative: flag(&args, "iter-steps", 40_000usize),
        seed: flag(&args, "seed", 0u64),
        modified_variants: flag(&args, "variants", 4usize),
        edits_per_variant: flag(&args, "edits", 2usize),
        ..Default::default()
    };
    config.workload.seq_length = flag(&args, "seq-len", 30usize);
    config.gnn.memory = config.env.memory;

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }
    let reporter = Reporter::new("fig8");
    reporter.info(format!(
        "steps={} iter_steps={} variants={} edits={}",
        config.train_steps,
        config.train_steps_iterative,
        config.modified_variants,
        config.edits_per_variant
    ));
    let r = generalisation(&config);
    reporter.done();

    println!("# Fig. 8 — generalising to unseen graphs");
    println!("# bar heights: mean U_agent/U_opt (lower is better); SP = dotted line");
    println!("family,policy,mean_ratio,std_ratio,sp_ratio");
    println!(
        "different_graphs,GNN,{:.4},{:.4},{:.4}",
        r.gnn_different.policy.mean_ratio,
        r.gnn_different.policy.std_ratio,
        r.gnn_different.shortest_path.mean_ratio
    );
    println!(
        "different_graphs,GNN-Iterative,{:.4},{:.4},{:.4}",
        r.iterative_different.policy.mean_ratio,
        r.iterative_different.policy.std_ratio,
        r.iterative_different.shortest_path.mean_ratio
    );
    println!(
        "modified_abilene,GNN,{:.4},{:.4},{:.4}",
        r.gnn_modified.policy.mean_ratio,
        r.gnn_modified.policy.std_ratio,
        r.gnn_modified.shortest_path.mean_ratio
    );
    println!(
        "modified_abilene,GNN-Iterative,{:.4},{:.4},{:.4}",
        r.iterative_modified.policy.mean_ratio,
        r.iterative_modified.policy.std_ratio,
        r.iterative_modified.shortest_path.mean_ratio
    );

    if let Some(path) = args.get("json") {
        let json = gddr_bench::json::to_json(&r).expect("result serialises");
        gddr_bench::write_artifact(path, &json);
    }

    println!("\n# shape check (paper expectations):");
    println!(
        "# GNN stays below SP line on different graphs: {}",
        yesno(r.gnn_different.policy.mean_ratio < r.gnn_different.shortest_path.mean_ratio)
    );
    println!(
        "# GNN stays below SP line on modified Abilene: {}",
        yesno(r.gnn_modified.policy.mean_ratio < r.gnn_modified.shortest_path.mean_ratio)
    );
    println!(
        "# different-graphs bars higher than modified-Abilene bars: {}",
        yesno(r.gnn_different.policy.mean_ratio >= r.gnn_modified.policy.mean_ratio - 0.05)
    );
    gddr_telemetry::uninstall();
}

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
