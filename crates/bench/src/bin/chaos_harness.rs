//! Chaos harness for the serving controller.
//!
//! Runs seeded fault scenarios against `gddr-serve` and checks
//! serving SLOs: zero unanswered requests, every response rung-tagged
//! with a routing valid for the active topology, bounded p99 ladder
//! depth, and recovery within a fixed number of requests after the
//! fault window closes. Every scenario runs **twice** and the two
//! rung sequences must be bit-identical — determinism is itself an
//! SLO.
//!
//! The `budget_zero` scenario is deliberately broken (restart budget
//! zero under a panic storm) and must FAIL its recovery SLO: it
//! proves the harness detects violations rather than rubber-stamping.
//! All other scenarios must pass.
//!
//! Replication scenarios (`--scenario replication`, or any name from
//! `replication_scenario_names`) drive a replica set instead of a
//! bare controller: primary kill + failover, hedged stragglers,
//! rolling retools under live maintenance, and a flapping replica.
//! Their determinism digest covers the failover sequence too, and
//! `replicas_exhausted` is their deliberately broken member.
//!
//! Dynamic scenarios (`--scenario dynamics`, or any name from
//! `dynamic_scenario_names`) drive a sharded fleet under a compiled
//! [`DynamicsPlan`] timeline: link flaps with repair timers, rolling
//! maintenance windows and stacked capacity drains applied between
//! serving epochs, over scenario traffic (diurnal cycles, flash
//! crowds, elephant/mice mixes) and synthetic hierarchical WANs up to
//! 400 nodes. Their determinism digest further extends to the
//! applied-event sequence, and `broken_blackout` is their
//! deliberately broken member.
//!
//! Recovery scenarios (`--scenario recovery`, or any name from
//! `recovery_scenario_names`) crash a snapshot-enabled fleet
//! mid-serve and restart it from its durable store: a clean
//! crash/restore must come back warm on the restored LastGood rung,
//! a corruption sweep (torn writes, bit flips, missing files) must
//! cold-start cleanly with typed errors, and `manifest_lies` — whose
//! manifest pins bytes it does not match — is their deliberately
//! broken member: the store correctly refuses the warm restore the
//! scenario demands.
//!
//! [`DynamicsPlan`]: gddr_serve::scenario::DynamicsPlan
//!
//! ```text
//! chaos_harness [--scenario all|replication|dynamics|recovery|<name>[,<name>...]]
//!               [--seed N] [--requests N] [--out PATH]
//!               [--telemetry PATH] [--postmortem PATH]
//! ```
//!
//! A bounded flight recorder is always installed: the first
//! `slo_alert` (the deliberately broken `budget_zero` scenario burns
//! its error budget) — or, failing that, the first unexpected
//! violation — dumps the recent event history to `--postmortem` as
//! replayable JSONL.
//!
//! Exits non-zero on any unexpected result and prints the scenario
//! name and seed needed to reproduce it:
//!
//! ```text
//! chaos_harness --scenario worker_panic --seed 42
//! ```

use std::sync::Arc;

use gddr_bench::{flag, parse_args, write_artifact};
use gddr_ser::Json;
use gddr_serve::chaos::{
    recovery_scenario_names, replication_scenario_names, run_recovery_scenario,
    run_replication_scenario, run_scenario, scenario_names, scenario_seed, ScenarioOutcome,
};
use gddr_serve::scenario::{dynamic_scenario_names, run_dynamic_scenario};
use gddr_telemetry::{FlightRecorder, JsonlSink, Sink, TeeSink};

fn outcome_json(outcome: &ScenarioOutcome, expected_fail: bool, deterministic: bool) -> Json {
    Json::obj([
        ("name", Json::Str(outcome.name.clone())),
        ("seed", Json::Num(outcome.seed as f64)),
        ("submitted", Json::Num(outcome.submitted as f64)),
        ("answered", Json::Num(outcome.answered as f64)),
        ("rung_sequence", Json::Str(outcome.rung_sequence.clone())),
        ("shed", Json::Num(outcome.shed as f64)),
        ("worker_restarts", Json::Num(outcome.worker_restarts as f64)),
        (
            "breaker_transitions",
            Json::Num(outcome.breaker_transitions as f64),
        ),
        ("p99_depth", Json::Num(outcome.p99_depth as f64)),
        ("failovers", Json::Num(outcome.failovers as f64)),
        ("hedges", Json::Num(outcome.hedges as f64)),
        ("recoveries", Json::Num(outcome.recoveries as f64)),
        (
            "failover_sequence",
            Json::Str(outcome.failover_sequence.clone()),
        ),
        ("event_sequence", Json::Str(outcome.event_sequence.clone())),
        ("deterministic", Json::Bool(deterministic)),
        ("expected_fail", Json::Bool(expected_fail)),
        (
            "violations",
            Json::Arr(
                outcome
                    .violations
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

fn main() {
    let args = parse_args(&[
        "scenario",
        "seed",
        "requests",
        "out",
        "telemetry",
        "postmortem",
    ]);

    // Always-on flight recorder; a full JSONL stream is teed on top
    // only when --telemetry asks for it.
    let postmortem = args
        .get("postmortem")
        .cloned()
        .unwrap_or_else(|| "results/chaos_postmortem.jsonl".to_string());
    let recorder = Arc::new(FlightRecorder::with_dump(&postmortem, &["slo_alert"]));
    let mut sinks: Vec<Arc<dyn Sink>> = vec![recorder.clone()];
    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        sinks.push(Arc::new(sink));
    }
    gddr_telemetry::install(Arc::new(TeeSink::new(sinks)));

    let scenario_arg = args.get("scenario").map(String::as_str).unwrap_or("all");
    let owned: Vec<String>;
    let scenarios: Vec<&str> = match scenario_arg {
        "all" => scenario_names().to_vec(),
        "replication" => replication_scenario_names().to_vec(),
        "dynamics" => dynamic_scenario_names().to_vec(),
        "recovery" => recovery_scenario_names().to_vec(),
        list => {
            owned = list.split(',').map(str::to_string).collect();
            owned.iter().map(String::as_str).collect()
        }
    };
    let base_seed: u64 = flag(&args, "seed", 42);
    let requests: usize = flag(&args, "requests", 48);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/CHAOS_report.json".to_string());

    // Injected worker panics are expected and supervised; the default
    // hook's backtrace spam would drown the report.
    std::panic::set_hook(Box::new(|_| {}));

    let mut results = Vec::new();
    let mut unexpected: Vec<String> = Vec::new();
    for name in &scenarios {
        let seed = scenario_seed(base_seed, name);
        let expected_fail = *name == "budget_zero"
            || *name == "replicas_exhausted"
            || *name == "broken_blackout"
            || *name == "manifest_lies";
        let replicated = replication_scenario_names().contains(name);
        let dynamic = dynamic_scenario_names().contains(name);
        let recovery = recovery_scenario_names().contains(name);
        // Replay-determinism SLO: same seed, same scenario, twice.
        // Replicated scenarios extend the digest with the failover
        // sequence; dynamic ones add the applied-event sequence.
        // Dynamic scenarios need enough requests to cover their event
        // horizons, so the floor is raised for them.
        let (first, second) = if dynamic {
            let req = requests.max(88);
            (
                run_dynamic_scenario(name, seed, req),
                run_dynamic_scenario(name, seed, req),
            )
        } else if replicated {
            (
                run_replication_scenario(name, seed, requests),
                run_replication_scenario(name, seed, requests),
            )
        } else if recovery {
            (
                run_recovery_scenario(name, seed, requests),
                run_recovery_scenario(name, seed, requests),
            )
        } else {
            (
                run_scenario(name, seed, requests),
                run_scenario(name, seed, requests),
            )
        };
        match (first, second) {
            (Ok(a), Ok(b)) => {
                let deterministic = a.rung_sequence == b.rung_sequence
                    && a.failover_sequence == b.failover_sequence
                    && a.event_sequence == b.event_sequence;
                if !deterministic {
                    unexpected.push(format!(
                        "{name}: same-seed replay diverged ({}/{}/{} vs {}/{}/{})",
                        a.rung_sequence,
                        a.failover_sequence,
                        a.event_sequence,
                        b.rung_sequence,
                        b.failover_sequence,
                        b.event_sequence
                    ));
                }
                if expected_fail && a.passed() {
                    unexpected.push(format!(
                        "{name}: deliberately broken scenario passed its SLOs"
                    ));
                }
                if !expected_fail && !a.passed() {
                    for v in &a.violations {
                        unexpected.push(format!("{name}: {v}"));
                    }
                }
                println!(
                    "chaos {name}: {} submitted, {} answered, rungs {}, shed {}, restarts {}, breaker {}, p99 depth {}, failovers {} [{}], hedges {}, recoveries {} — {}",
                    a.submitted,
                    a.answered,
                    a.rung_sequence,
                    a.shed,
                    a.worker_restarts,
                    a.breaker_transitions,
                    a.p99_depth,
                    a.failovers,
                    a.failover_sequence,
                    a.hedges,
                    a.recoveries,
                    if expected_fail {
                        if a.passed() { "UNEXPECTED PASS" } else { "failed as designed" }
                    } else if a.passed() && deterministic {
                        "ok"
                    } else {
                        "VIOLATED"
                    }
                );
                results.push(outcome_json(&a, expected_fail, deterministic));
            }
            (Err(e), _) | (_, Err(e)) => {
                unexpected.push(format!("{name}: harness error: {e}"));
            }
        }
    }
    let _ = std::panic::take_hook();

    // The deliberately broken scenarios (budget_zero; the replicated
    // replicas_exhausted; the dynamic broken_blackout) burn their
    // whole error budget, so any run including one must leave a
    // postmortem behind whose trigger — and final line — is an
    // slo_alert.
    let mut postmortem_alerts = 0usize;
    let broken_included = scenarios.contains(&"budget_zero")
        || scenarios.contains(&"replicas_exhausted")
        || scenarios.contains(&"broken_blackout");
    if broken_included {
        if !recorder.has_dumped() {
            unexpected
                .push("the broken scenario never tripped an slo_alert postmortem".to_string());
        } else {
            let text = std::fs::read_to_string(&postmortem).expect("read postmortem");
            match gddr_telemetry::parse_jsonl(&text) {
                Ok(events) => {
                    postmortem_alerts = events
                        .iter()
                        .filter(|e| matches!(e, gddr_telemetry::Event::SloAlert { .. }))
                        .count();
                    if postmortem_alerts == 0 {
                        unexpected.push("postmortem contains no slo_alert event".to_string());
                    }
                    println!(
                        "chaos: postmortem {postmortem} — {} events, {postmortem_alerts} slo_alerts",
                        events.len()
                    );
                }
                Err(e) => {
                    unexpected.push(format!("postmortem does not parse as JSONL events: {e}"))
                }
            }
        }
    }
    if !unexpected.is_empty() {
        // First trigger still wins; this only writes when no slo_alert
        // already did.
        recorder.dump_once("chaos unexpected violation");
    }

    gddr_telemetry::counter_add("chaos.scenarios", scenarios.len() as u64);
    gddr_telemetry::counter_add("chaos.unexpected", unexpected.len() as u64);

    let artifact = Json::obj([
        ("base_seed", Json::Num(base_seed as f64)),
        ("requests", Json::Num(requests as f64)),
        ("scenarios", Json::Arr(results)),
        (
            "postmortem",
            Json::obj([
                ("path", Json::Str(postmortem.clone())),
                ("dumped", Json::Bool(recorder.has_dumped())),
                ("slo_alerts", Json::Num(postmortem_alerts as f64)),
            ]),
        ),
        (
            "unexpected",
            Json::Arr(
                unexpected
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    write_artifact(&out, &artifact.to_string());
    gddr_telemetry::uninstall();

    if unexpected.is_empty() {
        println!(
            "chaos: {} scenarios behaved as specified (deliberately broken ones failed as designed)",
            scenarios.len()
        );
    } else {
        for v in &unexpected {
            eprintln!("chaos VIOLATION: {v}");
        }
        eprintln!("reproduce a scenario with:");
        eprintln!("  chaos_harness --scenario <name> --seed {base_seed} --requests {requests}");
        std::process::exit(1);
    }
}
