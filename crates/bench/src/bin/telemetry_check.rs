//! Validates a telemetry JSONL trace produced by a figure binary.
//!
//! Used by CI after a short seeded `fig7_learning_curves --telemetry`
//! run: every line must parse with `gddr-ser`, re-serialise to the
//! identical bytes (lossless round-trip), and the trace must contain
//! the span/metric names the instrumented hot paths are expected to
//! emit during training.
//!
//! ```text
//! cargo run -p gddr-bench --bin telemetry_check -- --file trace.jsonl
//! ```
//!
//! Exits non-zero (panics) on any violation so CI fails loudly.

use std::collections::BTreeSet;

use gddr_bench::parse_args;
use gddr_ser::{FromJson, Json, ToJson};
use gddr_telemetry::Event;

/// Spans that a training run must have opened at least once.
const EXPECTED_SPANS: &[&str] = &[
    "ppo.rollout",
    "ppo.update",
    "ppo.backward",
    "env.step",
    "env.reward",
    "lp.simplex.solve",
    "lp.oracle.solve",
    "routing.softmin",
    "gnn.block.forward",
];

/// Counters that must have been incremented.
const EXPECTED_COUNTERS: &[&str] = &[
    "ppo.updates",
    "ppo.env_steps",
    "lp.oracle.hits",
    "lp.oracle.misses",
    "lp.simplex.solves",
    "lp.simplex.pivots",
];

/// Gauges the PPO update loop must have set.
const EXPECTED_GAUGES: &[&str] = &[
    "ppo.entropy",
    "ppo.approx_kl",
    "ppo.clip_fraction",
    "ppo.grad_norm",
    "ppo.policy_loss",
    "ppo.value_loss",
];

fn main() {
    let args = parse_args(&["file"]);
    let path = args.get("file").expect("--file <trace.jsonl> is required");
    let text = std::fs::read_to_string(path).expect("read trace file");

    let mut spans = BTreeSet::new();
    let mut counters = BTreeSet::new();
    let mut gauges = BTreeSet::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        let json = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: does not parse as JSON: {e}", i + 1));
        let event = Event::from_json(&json)
            .unwrap_or_else(|e| panic!("line {}: does not parse as an event: {e}", i + 1));
        // Lossless: re-serialising the parsed event reproduces the line.
        assert_eq!(
            event.to_json().to_string(),
            line,
            "line {}: round-trip is not byte-identical",
            i + 1
        );
        match &event {
            Event::Span { name, .. } => {
                spans.insert(name.clone());
            }
            Event::Counter { name, .. } => {
                counters.insert(name.clone());
            }
            Event::Gauge { name, .. } => {
                gauges.insert(name.clone());
            }
            Event::Histogram { .. }
            | Event::Message { .. }
            | Event::Checkpoint { .. }
            | Event::Rollback { .. }
            | Event::LpFallback { .. }
            | Event::FaultInjected { .. } => {}
        }
    }
    assert!(lines > 0, "trace is empty");

    let check = |kind: &str, expected: &[&str], seen: &BTreeSet<String>| {
        for name in expected {
            assert!(seen.contains(*name), "missing {kind} {name:?} in trace");
        }
    };
    check("span", EXPECTED_SPANS, &spans);
    check("counter", EXPECTED_COUNTERS, &counters);
    check("gauge", EXPECTED_GAUGES, &gauges);

    println!(
        "telemetry_check: OK — {lines} events, {} span names, {} counters, {} gauges",
        spans.len(),
        counters.len(),
        gauges.len()
    );
}
