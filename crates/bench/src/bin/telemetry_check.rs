//! Validates a telemetry JSONL trace produced by a figure binary.
//!
//! Two modes share the same lossless-parsing gate (every line must
//! parse with `gddr-ser` and re-serialise to identical bytes):
//!
//! - `--mode train` (default): the trace of a short seeded
//!   `fig7_learning_curves --telemetry` run must contain the
//!   span/metric names the instrumented training hot paths emit.
//! - `--mode serve`: the trace of a seeded
//!   `chaos_harness --telemetry` run must contain all five serving
//!   event kinds (`rung_served`, `breaker_transition`,
//!   `worker_restart`, `request_shed`, `health_transition`) with
//!   well-formed fields, and each kind must agree 1:1 with its
//!   paired `serve.*` counter. `slo_alert` events are optional (a
//!   healthy run has none) but when present must agree with
//!   `serve.slo_alerts` and carry a burn rate at or above their own
//!   threshold. The replication kinds (`failover`, `hedge_fired`,
//!   `replica_recovered`) are likewise optional-but-consistent:
//!   absent from single-controller runs, but when present they must
//!   agree 1:1 with their counters and be well-formed (a failover
//!   never targets its own source, hedge wins never exceed the batch,
//!   recoveries carry a positive probe count). The durability kinds
//!   (`snapshot_written`, `recovery`) are also optional-but-consistent
//!   with their `store.*` counters, and their fields are checked
//!   (positive shard/byte counts, warm restores carry a generation,
//!   cold starts carry a corruption-class detail). `--relax k1,k2`
//!   demotes the listed serve kinds to optional-but-consistent too —
//!   the dynamics smoke leg uses it for kinds its scenarios never
//!   trigger (no breaker trips, no worker restarts).
//! - `--mode trace`: the stream of a `serve_load --telemetry` run
//!   must reconstruct — every trace id referenced by a `rung_served`
//!   event has exactly one `fleet.admitted` and one `fleet.response`
//!   annotation, no trace event carries the untraced id 0, response
//!   markers carry a parseable positive `latency_ns` and a valid
//!   `rung`, and `serve.infer` spans carry a positive `batch_size`.
//!
//! ```text
//! cargo run -p gddr-bench --bin telemetry_check -- --file trace.jsonl
//! cargo run -p gddr-bench --bin telemetry_check -- --file chaos.jsonl --mode serve
//! cargo run -p gddr-bench --bin telemetry_check -- --file fleet.jsonl --mode trace
//! ```
//!
//! Exits non-zero (panics) on any violation so CI fails loudly.

use std::collections::{BTreeMap, BTreeSet};

use gddr_bench::parse_args;
use gddr_ser::{FromJson, Json, ToJson};
use gddr_telemetry::Event;

/// Spans that a training run must have opened at least once.
const EXPECTED_SPANS: &[&str] = &[
    "ppo.rollout",
    "ppo.update",
    "ppo.backward",
    "env.step",
    "env.reward",
    "lp.simplex.solve",
    "lp.oracle.solve",
    "routing.softmin",
    "gnn.block.forward",
];

/// Counters that must have been incremented.
const EXPECTED_COUNTERS: &[&str] = &[
    "ppo.updates",
    "ppo.env_steps",
    "lp.oracle.hits",
    "lp.oracle.misses",
    "lp.simplex.solves",
    "lp.simplex.pivots",
];

/// Gauges the PPO update loop must have set.
const EXPECTED_GAUGES: &[&str] = &[
    "ppo.entropy",
    "ppo.approx_kl",
    "ppo.clip_fraction",
    "ppo.grad_norm",
    "ppo.policy_loss",
    "ppo.value_loss",
];

/// Serving event kinds, each paired with the counter its emit helper
/// bumps exactly once per event.
const SERVE_KINDS: &[(&str, &str)] = &[
    ("rung_served", "serve.responses"),
    ("breaker_transition", "serve.breaker_transitions"),
    ("worker_restart", "serve.worker_restarts"),
    ("request_shed", "serve.shed"),
    ("health_transition", "serve.health_transitions"),
];

/// Replication event kinds: optional (absent from single-controller
/// runs) but counter-consistent when present, like `slo_alert`.
const REPLICATION_KINDS: &[(&str, &str)] = &[
    ("failover", "serve.failovers"),
    ("hedge_fired", "serve.hedges_fired"),
    ("replica_recovered", "serve.replica_recoveries"),
];

/// Durability event kinds: optional (absent from runs without a
/// snapshot store) but counter-consistent when present.
const STORE_KINDS: &[(&str, &str)] = &[
    ("snapshot_written", "store.snapshots_written"),
    ("recovery", "store.recoveries"),
];

const RUNG_NAMES: &[&str] = &["fresh", "last_good", "ecmp", "shortest_path"];
const FAILOVER_REASONS: &[&str] = &["consecutive_degraded", "pool_dead"];
const BREAKER_STATES: &[&str] = &["closed", "open", "half_open"];
const HEALTH_STATES: &[&str] = &["starting", "healthy", "degraded", "unhealthy"];

fn validate_train(events: &[Event]) {
    let mut spans = BTreeSet::new();
    let mut counters = BTreeSet::new();
    let mut gauges = BTreeSet::new();
    for event in events {
        match event {
            Event::Span { name, .. } => {
                spans.insert(name.clone());
            }
            Event::Counter { name, .. } => {
                counters.insert(name.clone());
            }
            Event::Gauge { name, .. } => {
                gauges.insert(name.clone());
            }
            _ => {}
        }
    }
    let check = |kind: &str, expected: &[&str], seen: &BTreeSet<String>| {
        for name in expected {
            assert!(seen.contains(*name), "missing {kind} {name:?} in trace");
        }
    };
    check("span", EXPECTED_SPANS, &spans);
    check("counter", EXPECTED_COUNTERS, &counters);
    check("gauge", EXPECTED_GAUGES, &gauges);
    println!(
        "telemetry_check(train): OK — {} events, {} span names, {} counters, {} gauges",
        events.len(),
        spans.len(),
        counters.len(),
        gauges.len()
    );
}

fn validate_serve(events: &[Event], relax: &BTreeSet<String>) {
    // Per-kind event counts, per-counter (delta sum, last total).
    let mut kind_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counter_stats: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut shed_served = 0u64;
    let named = |what: &str, value: &str, allowed: &[&str]| {
        assert!(
            allowed.contains(&value),
            "unknown {what} {value:?} (allowed: {allowed:?})"
        );
    };
    for event in events {
        match event {
            Event::Counter { name, delta, total } => {
                let entry = counter_stats.entry(name.clone()).or_insert((0, 0));
                entry.0 += delta;
                entry.1 = *total;
            }
            Event::RungServed { rung, shed, .. } => {
                *kind_counts.entry("rung_served").or_insert(0) += 1;
                named("rung", rung, RUNG_NAMES);
                // Shed requests bypass inference entirely; a "fresh"
                // tag on one would mean the ladder was not consulted.
                assert!(
                    !(*shed && rung == "fresh"),
                    "shed request tagged with the fresh rung"
                );
                if *shed {
                    shed_served += 1;
                }
            }
            Event::BreakerTransition { from, to, .. } => {
                *kind_counts.entry("breaker_transition").or_insert(0) += 1;
                named("breaker state", from, BREAKER_STATES);
                named("breaker state", to, BREAKER_STATES);
                assert_ne!(from, to, "breaker transition with from == to");
            }
            Event::WorkerRestart { restarts, .. } => {
                *kind_counts.entry("worker_restart").or_insert(0) += 1;
                assert!(*restarts > 0, "worker restart with zero restarts consumed");
            }
            Event::RequestShed { .. } => {
                *kind_counts.entry("request_shed").or_insert(0) += 1;
            }
            Event::HealthTransition { from, to, .. } => {
                *kind_counts.entry("health_transition").or_insert(0) += 1;
                named("health state", from, HEALTH_STATES);
                named("health state", to, HEALTH_STATES);
                assert_ne!(from, to, "health transition with from == to");
            }
            Event::SloAlert {
                burn_rate,
                threshold,
                window,
                ..
            } => {
                *kind_counts.entry("slo_alert").or_insert(0) += 1;
                assert!(
                    burn_rate >= threshold,
                    "slo_alert fired below its own threshold ({burn_rate} < {threshold})"
                );
                assert!(*window > 0, "slo_alert with zero window");
            }
            Event::Failover {
                from_replica,
                to_replica,
                reason,
                ..
            } => {
                *kind_counts.entry("failover").or_insert(0) += 1;
                named("failover reason", reason, FAILOVER_REASONS);
                assert_ne!(
                    from_replica, to_replica,
                    "failover from a replica to itself"
                );
            }
            Event::HedgeFired {
                primary,
                standby,
                wins,
                batch,
                ..
            } => {
                *kind_counts.entry("hedge_fired").or_insert(0) += 1;
                assert_ne!(primary, standby, "hedge re-issued to the primary itself");
                assert!(*batch > 0, "hedge_fired with an empty batch");
                assert!(
                    wins <= batch,
                    "hedge_fired with more standby wins ({wins}) than batch items ({batch})"
                );
            }
            Event::ReplicaRecovered { probes, .. } => {
                *kind_counts.entry("replica_recovered").or_insert(0) += 1;
                assert!(*probes > 0, "replica_recovered with zero probes");
            }
            Event::SnapshotWritten {
                shards,
                generation,
                bytes,
                path,
                ..
            } => {
                *kind_counts.entry("snapshot_written").or_insert(0) += 1;
                assert!(*shards > 0, "snapshot_written with zero shards");
                assert!(*generation > 0, "snapshot_written with generation 0");
                assert!(*bytes > 0, "snapshot_written with zero bytes");
                assert!(!path.is_empty(), "snapshot_written with an empty path");
            }
            Event::Recovery {
                shards,
                outcome,
                generation,
                detail,
                ..
            } => {
                *kind_counts.entry("recovery").or_insert(0) += 1;
                assert!(*shards > 0, "recovery with zero shards");
                match outcome.as_str() {
                    "warm" => {
                        assert!(*generation > 0, "warm recovery with generation 0");
                        assert!(
                            detail.is_empty(),
                            "warm recovery carries a corruption detail {detail:?}"
                        );
                    }
                    "cold" => {
                        assert!(
                            !detail.is_empty(),
                            "cold recovery without a corruption-class detail"
                        );
                    }
                    other => panic!("unknown recovery outcome {other:?}"),
                }
            }
            _ => {}
        }
    }
    for (kind, counter) in SERVE_KINDS {
        let seen = kind_counts.get(kind).copied().unwrap_or(0);
        if seen == 0 && relax.contains(*kind) {
            // A relaxed kind may be absent (e.g. no breaker ever trips
            // in a dynamics run), but then its counter must agree.
            let (delta_sum, last_total) = counter_stats.get(*counter).copied().unwrap_or((0, 0));
            assert_eq!(
                delta_sum, 0,
                "counter {counter:?} moved ({delta_sum}) with no {kind:?} events"
            );
            assert_eq!(
                last_total, 0,
                "counter {counter:?} ended at {last_total} with no {kind:?} events"
            );
            continue;
        }
        assert!(seen > 0, "missing serve event kind {kind:?} in trace");
        let (delta_sum, last_total) = counter_stats
            .get(*counter)
            .copied()
            .unwrap_or_else(|| panic!("missing counter {counter:?} in trace"));
        // The emit helpers bump the paired counter exactly once per
        // typed event, so the trace must agree with itself.
        assert_eq!(
            delta_sum, seen,
            "counter {counter:?} deltas ({delta_sum}) disagree with {kind:?} events ({seen})"
        );
        assert_eq!(
            last_total, seen,
            "counter {counter:?} final total ({last_total}) disagrees with {kind:?} events ({seen})"
        );
    }
    // SLO alerts are optional (a healthy run has none), but when any
    // appear they must agree with their counter, like every other kind.
    let alert_events = kind_counts.get("slo_alert").copied().unwrap_or(0);
    let alert_counter = counter_stats
        .get("serve.slo_alerts")
        .copied()
        .unwrap_or((0, 0));
    assert_eq!(
        alert_counter.0, alert_events,
        "counter \"serve.slo_alerts\" deltas ({}) disagree with slo_alert events ({alert_events})",
        alert_counter.0
    );
    // Replication and durability kinds: optional, but
    // counter-consistent when present.
    for (kind, counter) in REPLICATION_KINDS.iter().chain(STORE_KINDS) {
        let seen = kind_counts.get(kind).copied().unwrap_or(0);
        let (delta_sum, _) = counter_stats.get(*counter).copied().unwrap_or((0, 0));
        assert_eq!(
            delta_sum, seen,
            "counter {counter:?} deltas ({delta_sum}) disagree with {kind:?} events ({seen})"
        );
    }
    // Every shed victim produces one request_shed event at admission
    // and one shed-tagged rung_served event when answered.
    let shed_events = kind_counts.get("request_shed").copied().unwrap_or(0);
    assert_eq!(
        shed_events, shed_served,
        "request_shed events ({shed_events}) disagree with shed-tagged responses ({shed_served})"
    );
    println!(
        "telemetry_check(serve): OK — {} events, {} responses ({} shed), {} breaker transitions, {} worker restarts, {} health transitions, {} slo alerts, {} failovers, {} hedges, {} recoveries, {} snapshots, {} restore attempts",
        events.len(),
        kind_counts.get("rung_served").copied().unwrap_or(0),
        shed_served,
        kind_counts.get("breaker_transition").copied().unwrap_or(0),
        kind_counts.get("worker_restart").copied().unwrap_or(0),
        kind_counts.get("health_transition").copied().unwrap_or(0),
        alert_events,
        kind_counts.get("failover").copied().unwrap_or(0),
        kind_counts.get("hedge_fired").copied().unwrap_or(0),
        kind_counts.get("replica_recovered").copied().unwrap_or(0),
        kind_counts.get("snapshot_written").copied().unwrap_or(0),
        kind_counts.get("recovery").copied().unwrap_or(0),
    );
}

/// Validates the request-scoped trace layer of a fleet run: every
/// served trace reconstructs into exactly one admission and one
/// response marker, and every trace event is well-formed.
fn validate_trace(events: &[Event]) {
    let mut served: BTreeSet<u64> = BTreeSet::new();
    // Per trace id: (admitted, response) marker counts.
    let mut markers: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut spans = 0u64;
    let mut annotations = 0u64;
    let attr = |attrs: &[(String, String)], key: &str| -> Option<String> {
        attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    for event in events {
        match event {
            Event::RungServed { trace, .. } if *trace != 0 => {
                served.insert(*trace);
            }
            Event::TraceAnnotation {
                trace_id,
                name,
                attrs,
                ..
            } => {
                annotations += 1;
                assert_ne!(*trace_id, 0, "trace_annotation with the untraced id 0");
                let entry = markers.entry(*trace_id).or_insert((0, 0));
                match name.as_str() {
                    "fleet.admitted" => entry.0 += 1,
                    "fleet.response" => {
                        entry.1 += 1;
                        let latency: u64 = attr(attrs, "latency_ns")
                            .unwrap_or_else(|| {
                                panic!("trace {trace_id}: response without latency_ns")
                            })
                            .parse()
                            .unwrap_or_else(|e| panic!("trace {trace_id}: bad latency_ns: {e}"));
                        assert!(latency > 0, "trace {trace_id}: zero response latency");
                        let rung = attr(attrs, "rung")
                            .unwrap_or_else(|| panic!("trace {trace_id}: response without rung"));
                        assert!(
                            RUNG_NAMES.contains(&rung.as_str()),
                            "trace {trace_id}: unknown rung {rung:?}"
                        );
                    }
                    "fleet.hedge" => {
                        // Hedged duplicate marker on the primary's
                        // trace: the duplicate serve itself is
                        // untraced, so the (1, 1) admission/response
                        // invariant below is untouched.
                        let winner = attr(attrs, "winner").unwrap_or_else(|| {
                            panic!("trace {trace_id}: hedge marker without winner")
                        });
                        assert!(
                            winner == "primary" || winner == "standby",
                            "trace {trace_id}: unknown hedge winner {winner:?}"
                        );
                        let generation: u64 = attr(attrs, "generation")
                            .unwrap_or_else(|| {
                                panic!("trace {trace_id}: hedge marker without generation")
                            })
                            .parse()
                            .unwrap_or_else(|e| panic!("trace {trace_id}: bad generation: {e}"));
                        assert!(generation > 0, "trace {trace_id}: zero hedge generation");
                    }
                    other => panic!("unknown trace annotation {other:?}"),
                }
            }
            Event::TraceSpan {
                trace_id,
                name,
                dur_ns: _,
                attrs,
                ..
            } => {
                spans += 1;
                assert_ne!(*trace_id, 0, "trace_span with the untraced id 0");
                assert_eq!(name, "serve.infer", "unknown trace span {name:?}");
                let batch: u64 = attr(attrs, "batch_size")
                    .unwrap_or_else(|| panic!("trace {trace_id}: infer span without batch_size"))
                    .parse()
                    .unwrap_or_else(|e| panic!("trace {trace_id}: bad batch_size: {e}"));
                assert!(batch >= 1, "trace {trace_id}: batch_size < 1");
            }
            _ => {}
        }
    }
    assert!(!served.is_empty(), "no traced rung_served events in stream");
    // The completeness invariant: every served trace has exactly one
    // admission marker and one response marker — a full waterfall.
    let mut complete = 0u64;
    for id in &served {
        let (admitted, responded) = markers.get(id).copied().unwrap_or((0, 0));
        assert_eq!(
            (admitted, responded),
            (1, 1),
            "trace {id}: {admitted} admissions / {responded} responses (want 1/1)"
        );
        complete += 1;
    }
    if let Some(id) = markers.keys().find(|id| !served.contains(id)) {
        panic!("trace {id} has markers but no rung_served event");
    }
    println!(
        "telemetry_check(trace): OK — {} events, {complete} complete traces, {annotations} annotations, {spans} infer spans",
        events.len()
    );
}

fn main() {
    let args = parse_args(&["file", "mode", "relax"]);
    let path = args.get("file").expect("--file <trace.jsonl> is required");
    let mode = args.get("mode").map(String::as_str).unwrap_or("train");
    let relax: BTreeSet<String> = args
        .get("relax")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    for kind in &relax {
        assert!(
            SERVE_KINDS.iter().any(|(k, _)| k == kind),
            "--relax {kind:?} is not a serve event kind"
        );
    }
    let text = std::fs::read_to_string(path).expect("read trace file");

    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let json = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: does not parse as JSON: {e}", i + 1));
        let event = Event::from_json(&json)
            .unwrap_or_else(|e| panic!("line {}: does not parse as an event: {e}", i + 1));
        // Lossless: re-serialising the parsed event reproduces the line.
        assert_eq!(
            event.to_json().to_string(),
            line,
            "line {}: round-trip is not byte-identical",
            i + 1
        );
        events.push(event);
    }
    assert!(!events.is_empty(), "trace is empty");

    match mode {
        "train" => validate_train(&events),
        "serve" => validate_serve(&events, &relax),
        "trace" => validate_trace(&events),
        other => panic!("unknown --mode {other:?} (expected train, serve or trace)"),
    }
}
