//! Budgeted fuzz sweeps over the `gddr-check` invariant targets.
//!
//! Runs every (target, seed) pair in a fixed-seed grid, shrinks the
//! first failure to a minimal counterexample, writes a one-line JSON
//! replay file, and exits non-zero so CI fails loudly. Any reported
//! failure is reproducible with:
//!
//! ```text
//! cargo run -p gddr-bench --bin fuzz_harness -- --replay <file.json>
//! ```
//!
//! Flags:
//! - `--targets ci|all|a,b,c` — target set (default `ci`, which
//!   excludes the deliberately broken `planted` target),
//! - `--seeds N` — seeds `0..N` per target (default 25),
//! - `--size S` — maximum structural size (default 12),
//! - `--budget-ms MS` — wall-clock budget; remaining cases are skipped
//!   and counted (default 30000),
//! - `--out PATH` — JSON artifact (default `results/FUZZ_report.json`),
//! - `--replay PATH` — replay one case from a file and exit,
//! - `--replay-out PATH` — where to write the shrunk counterexample
//!   (default `/tmp/fuzz_counterexample.json`),
//! - `--telemetry PATH` — JSONL event trace,
//! - `--plant 1` — include the planted target (demonstrates the
//!   catch/shrink/replay loop; the run is expected to fail).

use std::sync::Arc;
use std::time::Duration;

use gddr_bench::{flag, parse_args, write_artifact};
use gddr_check::fuzz::{self, FuzzCase, Outcome};
use gddr_ser::{Json, ToJson};
use gddr_telemetry::JsonlSink;

fn main() {
    let args = parse_args(&[
        "targets",
        "seeds",
        "size",
        "budget-ms",
        "out",
        "replay",
        "replay-out",
        "telemetry",
        "plant",
    ]);

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }

    // Replay mode: run exactly one case from its seed file.
    if let Some(path) = args.get("replay") {
        let text = std::fs::read_to_string(path).expect("read replay file");
        let case = FuzzCase::from_replay_string(&text)
            .unwrap_or_else(|e| panic!("malformed replay file {path}: {e}"));
        eprintln!(
            "replaying target={} seed={} size={}",
            case.target, case.seed, case.size
        );
        match fuzz::run_case(&case) {
            Outcome::Pass => {
                println!("replay PASSED: the case no longer fails");
                gddr_telemetry::uninstall();
            }
            Outcome::Fail { message, panicked } => {
                println!(
                    "replay FAILED ({}): {message}",
                    if panicked { "panic" } else { "violation" }
                );
                gddr_telemetry::uninstall();
                std::process::exit(1);
            }
        }
        return;
    }

    let target_arg = args.get("targets").map(String::as_str).unwrap_or("ci");
    let owned: Vec<String>;
    let mut targets: Vec<&str> = match target_arg {
        "ci" => fuzz::ci_targets(),
        "all" => fuzz::all_targets().to_vec(),
        list => {
            owned = list.split(',').map(str::to_string).collect();
            owned.iter().map(String::as_str).collect()
        }
    };
    if flag(&args, "plant", 0u8) == 1 && !targets.contains(&"planted") {
        targets.push("planted");
    }
    let seeds: u64 = flag(&args, "seeds", 25);
    let size: u64 = flag(&args, "size", 12);
    let budget_ms: u64 = flag(&args, "budget-ms", 30_000);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/FUZZ_report.json".to_string());
    let replay_out = args
        .get("replay-out")
        .cloned()
        .unwrap_or_else(|| "/tmp/fuzz_counterexample.json".to_string());

    // Panics in fuzzed code are caught and reported as failures; the
    // default hook's backtrace spam would drown the report.
    std::panic::set_hook(Box::new(|_| {}));
    let report = fuzz::sweep(
        &targets,
        seeds,
        size,
        Some(Duration::from_millis(budget_ms)),
    );
    let _ = std::panic::take_hook();

    gddr_telemetry::counter_add("fuzz.cases", report.cases as u64);
    gddr_telemetry::counter_add("fuzz.failures", report.failures.len() as u64);

    // Shrink every failure; report the minimal counterexamples.
    let shrunk: Vec<(FuzzCase, String, bool)> = report
        .failures
        .iter()
        .map(|f| (fuzz::shrink(&f.case), f.message.clone(), f.panicked))
        .collect();

    let artifact = Json::obj([
        (
            "targets",
            Json::Arr(
                targets
                    .iter()
                    .map(|t| Json::Str(t.to_string()))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("seeds", Json::Num(seeds as f64)),
        ("max_size", Json::Num(size as f64)),
        ("cases", Json::Num(report.cases as f64)),
        ("skipped", Json::Num(report.skipped as f64)),
        ("elapsed_ms", Json::Num(report.elapsed.as_millis() as f64)),
        (
            "failures",
            Json::Arr(
                shrunk
                    .iter()
                    .map(|(case, message, panicked)| {
                        Json::obj([
                            ("case", case.to_json()),
                            ("message", Json::Str(message.clone())),
                            ("panicked", Json::Bool(*panicked)),
                        ])
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    write_artifact(&out, &artifact.to_string());

    println!(
        "fuzz: {} cases over {} targets in {} ms ({} skipped on budget): {} failure(s)",
        report.cases,
        targets.len(),
        report.elapsed.as_millis(),
        report.skipped,
        report.failures.len()
    );
    if let Some((case, message, panicked)) = shrunk.first() {
        std::fs::write(&replay_out, case.to_replay_string()).expect("write replay file");
        eprintln!("minimal counterexample written to {replay_out}");
        eprintln!(
            "  target={} seed={} size={} ({}): {message}",
            case.target,
            case.seed,
            case.size,
            if *panicked { "panic" } else { "violation" }
        );
        eprintln!("reproduce with:");
        eprintln!(
            "  cargo run --release -p gddr-bench --bin fuzz_harness -- --replay {replay_out}"
        );
        gddr_telemetry::uninstall();
        std::process::exit(1);
    }
    gddr_telemetry::uninstall();
}
