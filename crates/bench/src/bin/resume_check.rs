//! Kill-and-resume smoke check (CI gate for the fault-tolerant
//! trainer): runs a short seeded Fig. 7-style training to completion,
//! then replays it with a forced stop at checkpoint `--halt-updates`
//! and resumes from the persisted checkpoint in a fresh trainer. The
//! two TrainingLog JSON serialisations must match **byte-for-byte**;
//! any divergence exits non-zero.
//!
//! ```text
//! cargo run -p gddr-bench --release --bin resume_check -- \
//!     --steps 96 --seed 7 --halt-updates 2 --dir out/resume_check
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use gddr_bench::{flag, parse_args};
use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext};
use gddr_core::policies::MlpPolicy;
use gddr_rl::{Checkpoint, FaultTolerance, Ppo, PpoConfig, TrainingLog};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_ser::ToJson;
use gddr_telemetry::{JsonlSink, Reporter};

fn make_env(seed: u64) -> DdrEnv {
    let g = gddr_net::topology::zoo::cesnet();
    let mut rng = StdRng::seed_from_u64(seed);
    let sequences = standard_sequences(&g, 2, 10, 5, &mut rng);
    let env_cfg = DdrEnvConfig {
        memory: 2,
        ..Default::default()
    };
    DdrEnv::new(GraphContext::new(g, sequences), env_cfg)
}

fn make_policy(seed: u64) -> MlpPolicy {
    let g = gddr_net::topology::zoo::cesnet();
    let mut rng = StdRng::seed_from_u64(seed);
    MlpPolicy::new(2, g.num_nodes(), g.num_edges(), &[8], -0.7, &mut rng)
}

fn make_ppo() -> Ppo {
    Ppo::new(PpoConfig {
        n_steps: 16,
        minibatch_size: 8,
        epochs: 1,
        learning_rate: 1e-3,
        ..Default::default()
    })
}

fn main() {
    let args = parse_args(&["steps", "seed", "halt-updates", "dir", "telemetry"]);
    let steps = flag(&args, "steps", 96usize);
    let seed = flag(&args, "seed", 7u64);
    let halt_updates = flag(&args, "halt-updates", 2usize);
    let dir = PathBuf::from(
        args.get("dir")
            .cloned()
            .unwrap_or_else(|| "out/resume_check".to_string()),
    );
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let ckpt_path = dir.join("resume.ckpt.json");

    if let Some(path) = args.get("telemetry") {
        let sink = JsonlSink::create(path).expect("create telemetry file");
        gddr_telemetry::install(Arc::new(sink));
    }
    let reporter = Reporter::new("resume_check");
    reporter.info(format!(
        "steps={steps} seed={seed} halt_updates={halt_updates}"
    ));

    // 1. Uninterrupted reference run.
    let reference = {
        let mut env = make_env(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut policy = make_policy(seed);
        let mut ppo = make_ppo();
        let mut log = TrainingLog::default();
        ppo.train_resilient(
            &mut env,
            &mut policy,
            steps,
            &mut rng,
            &mut log,
            &FaultTolerance::default(),
            None,
        )
        .expect("reference run");
        log.to_json().to_string()
    };

    // 2. The same run killed at checkpoint `halt_updates`.
    {
        let mut env = make_env(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut policy = make_policy(seed);
        let mut ppo = make_ppo();
        let mut log = TrainingLog::default();
        let ft = FaultTolerance {
            checkpoint_path: Some(ckpt_path.clone()),
            checkpoint_every_updates: 1,
            halt_after_updates: Some(halt_updates),
            ..Default::default()
        };
        let report = ppo
            .train_resilient(&mut env, &mut policy, steps, &mut rng, &mut log, &ft, None)
            .expect("halted run");
        assert!(report.halted, "run must stop at the halt hook");
        reporter.info(format!(
            "halted at {} steps, {} checkpoints written",
            log.total_steps, report.checkpoints_written
        ));
    }

    // 3. Resume from disk in a fresh trainer with an unrelated RNG
    //    seed: every bit of state must come from the checkpoint.
    let resumed = {
        let ckpt = Checkpoint::load(&ckpt_path).expect("load checkpoint");
        let mut env = make_env(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let mut policy = make_policy(seed);
        let mut ppo = make_ppo();
        let mut log = TrainingLog::default();
        ppo.train_resilient(
            &mut env,
            &mut policy,
            steps,
            &mut rng,
            &mut log,
            &FaultTolerance::default(),
            Some(&ckpt),
        )
        .expect("resumed run");
        log.to_json().to_string()
    };

    reporter.done();
    gddr_telemetry::uninstall();

    if reference == resumed {
        println!(
            "resume_check PASS: TrainingLog identical over {steps} steps ({} bytes)",
            reference.len()
        );
    } else {
        eprintln!("resume_check FAIL: resumed TrainingLog diverges from the uninterrupted run");
        eprintln!("  reference: {} bytes", reference.len());
        eprintln!("  resumed:   {} bytes", resumed.len());
        let divergence = reference
            .bytes()
            .zip(resumed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.len().min(resumed.len()));
        eprintln!("  first divergence at byte {divergence}");
        std::process::exit(1);
    }
}
