//! A minimal in-tree micro-benchmark harness.
//!
//! Replaces the `criterion` dependency for the hermetic build: warmup,
//! a fixed number of timed samples (each batched so one sample lasts at
//! least a millisecond), and summary statistics (min / mean / median /
//! p95 per iteration). Results print as a table on stderr and are
//! written as a JSON artifact to `results/BENCH_<group>.json`.
//!
//! Usage mirrors the old criterion groups:
//!
//! ```no_run
//! let mut group = gddr_bench::harness::BenchGroup::new("my_group");
//! group.sample_size(20);
//! group.bench("fast_path", || 2 + 2);
//! group.finish();
//! ```

use std::time::Instant;

use gddr_ser::{Json, ToJson};

/// Lower bound on the duration of one timed sample; faster closures
/// are batched until a sample takes at least this long.
const MIN_SAMPLE_NANOS: u128 = 1_000_000;

/// Warmup runs before calibration (also primes caches/allocators).
const WARMUP_ITERS: usize = 3;

/// Per-iteration timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Case label within the group.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: usize,
    /// Fastest observed per-iteration time (ns).
    pub min_ns: f64,
    /// Mean per-iteration time (ns).
    pub mean_ns: f64,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 95th-percentile per-iteration time (ns).
    pub p95_ns: f64,
}

impl ToJson for Stats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
        ])
    }
}

/// Formats a nanosecond figure with a human-friendly unit.
fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of benchmark cases sharing a sample budget.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    results: Vec<Stats>,
    meta: Vec<(String, Json)>,
}

impl BenchGroup {
    /// Starts a group; `name` keys the JSON artifact.
    pub fn new(name: &str) -> Self {
        eprintln!("# bench group: {name}");
        BenchGroup {
            name: name.to_string(),
            sample_size: 30,
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Sets the number of timed samples per case (default 30).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Attaches a run-metadata entry (configuration echo, environment
    /// notes) to the JSON artifact's `meta` object. Last write wins for
    /// a repeated key.
    pub fn meta(&mut self, key: &str, value: impl ToJson) -> &mut Self {
        let json = value.to_json();
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = json,
            None => self.meta.push((key.to_string(), json)),
        }
        self
    }

    /// Runs one benchmark case: warmup, batch calibration, then
    /// `sample_size` timed samples. Returns the summary (also retained
    /// for [`BenchGroup::finish`]).
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> &Stats {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }

        // Calibrate how many iterations make one sample last at least
        // MIN_SAMPLE_NANOS, so fast closures are timed in batches.
        let mut iters = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= MIN_SAMPLE_NANOS || iters >= 1 << 20 {
                break;
            }
            // Aim past the threshold with headroom; at least double.
            let scale = (MIN_SAMPLE_NANOS * 2 / elapsed.max(1)) as usize;
            iters = (iters * scale.max(2)).min(1 << 20);
        }

        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let n = per_iter.len();
        let median = if n % 2 == 1 {
            per_iter[n / 2]
        } else {
            (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
        };
        // Nearest-rank p95, clamped to the last sample.
        let p95 = per_iter[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        let stats = Stats {
            name: label.to_string(),
            samples: n,
            iters_per_sample: iters,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
            median_ns: median,
            p95_ns: p95,
        };
        eprintln!(
            "{:<40} median {:>12}  p95 {:>12}  min {:>12}  ({} samples x {} iters)",
            format!("{}/{}", self.name, label),
            human(stats.median_ns),
            human(stats.p95_ns),
            human(stats.min_ns),
            n,
            iters,
        );
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Writes the group's results to `results/BENCH_<group>.json` under
    /// the workspace root (cargo runs bench targets with the package
    /// directory as the working directory, so the path is resolved by
    /// walking up to the directory holding `Cargo.lock`).
    pub fn finish(&self) {
        // Embed run metadata so an artifact is self-describing: bench
        // name, sample budget, case count, plus caller-supplied config.
        let mut meta = vec![
            ("bench".to_string(), self.name.to_json()),
            ("sample_size".to_string(), self.sample_size.to_json()),
            ("cases".to_string(), self.results.len().to_json()),
        ];
        meta.extend(self.meta.iter().cloned());
        let json = Json::obj([
            ("group", self.name.to_json()),
            ("meta", Json::Obj(meta)),
            ("results", self.results.to_json()),
        ]);
        let root = workspace_root();
        let path = root.join(format!("results/BENCH_{}.json", self.name));
        crate::write_artifact(&path.to_string_lossy(), &json.to_string());
    }
}

/// The nearest ancestor of the current directory containing a
/// `Cargo.lock` (the workspace root); falls back to the current
/// directory when none is found.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_positive() {
        let mut group = BenchGroup::new("harness_selftest");
        group.sample_size(5);
        let stats = group
            .bench("spin", || {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
            .clone();
        assert_eq!(stats.samples, 5);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.p95_ns);
        assert!(stats.mean_ns >= stats.min_ns);
    }

    #[test]
    fn json_shape() {
        let mut group = BenchGroup::new("harness_json");
        group.sample_size(2);
        group.bench("noop", || 1);
        let json = Json::obj([("results", group.results.to_json())]).to_string();
        assert!(json.contains("\"median_ns\":"));
        assert!(json.contains("\"noop\""));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_size_panics() {
        BenchGroup::new("bad").sample_size(0);
    }

    #[test]
    fn meta_entries_overwrite_by_key() {
        let mut group = BenchGroup::new("harness_meta");
        group.meta("topology", "abilene").meta("steps", 10usize);
        group.meta("steps", 20usize);
        assert_eq!(group.meta.len(), 2);
        let steps = &group.meta.iter().find(|(k, _)| k == "steps").unwrap().1;
        assert_eq!(steps.to_string(), "20");
    }
}
