//! # gddr-bench
//!
//! Benchmark harness for the GDDR reproduction.
//!
//! Binaries regenerate the paper's evaluation figures:
//!
//! - `fig6_fixed_graph` — Fig. 6: fixed-graph Abilene bars (MLP vs GNN
//!   vs the shortest-path line), with `--memory`/`--msg-steps` flags
//!   for the ablations in DESIGN.md,
//! - `fig7_learning_curves` — Fig. 7: per-episode reward curves for
//!   both agents,
//! - `fig8_generalisation` — Fig. 8: generalisation to unseen and
//!   modified topologies.
//!
//! In-tree benches (see [`harness`]) measure the substrate (LP solve,
//! softmin translation, environment step rate, GNN forward/backward)
//! and run the quality ablations for softmin γ and the DAG-pruning
//! algorithms. Run them with `cargo bench --offline`; each writes a
//! `results/BENCH_<group>.json` artifact.

pub mod harness;
pub mod json;

use std::collections::HashMap;

/// Minimal `--key value` argument parser for the figure binaries.
///
/// Unrecognised arguments are rejected so typos do not silently run a
/// default configuration.
///
/// # Panics
///
/// Panics (with usage help) on malformed arguments.
pub fn parse_args(allowed: &[&str]) -> HashMap<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| panic!("expected --key, got {:?}", args[i]));
        assert!(
            allowed.contains(&key),
            "unknown flag --{key}; allowed: {allowed:?}"
        );
        assert!(i + 1 < args.len(), "--{key} needs a value");
        map.insert(key.to_string(), args[i + 1].clone());
        i += 2;
    }
    map
}

/// Writes `contents` to `path`, creating parent directories.
///
/// # Panics
///
/// Panics on I/O failure — figure binaries should fail loudly rather
/// than silently drop results.
pub fn write_artifact(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent).expect("create artifact directory");
    }
    std::fs::write(path, contents).expect("write artifact");
    eprintln!("wrote {path}");
}

/// Fetches a parsed flag as `T`, with a default.
///
/// # Panics
///
/// Panics if the value does not parse.
pub fn flag<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    map.get(key)
        .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --{key}: {e:?}")))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_defaults_and_parses() {
        let mut map = HashMap::new();
        map.insert("steps".to_string(), "42".to_string());
        assert_eq!(flag(&map, "steps", 7usize), 42);
        assert_eq!(flag(&map, "seed", 7u64), 7);
    }
}
