#!/usr/bin/env bash
# One CI smoke leg, runnable locally too:
#
#   tools/ci_smoke.sh <telemetry|resume|fuzz|robustness|chaos|serve_load|trace|failover|scenario|recovery>
#
# Every leg assumes the release build already exists (CI restores it
# from the shared cache; locally run `cargo build --release --offline`
# first — the cargo invocations below only relink if needed).
# Artifacts land in ci_artifacts/ so CI can upload them on failure.

set -euo pipefail

LEG="${1:?usage: tools/ci_smoke.sh <telemetry|resume|fuzz|robustness|chaos|serve_load|trace|failover|scenario|recovery>}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ART="$ROOT/ci_artifacts"
mkdir -p "$ART"
cd "$ROOT"

run() {
  cargo run --release --offline -p gddr-bench --bin "$@"
}

case "$LEG" in
  telemetry)
    # Seeded training with a JSONL sink, then validate the trace.
    run fig7_learning_curves -- \
      --steps 512 --seed 0 --seq-len 10 --cycle 5 --telemetry "$ART/trace.jsonl"
    run telemetry_check -- --file "$ART/trace.jsonl"
    ;;
  resume)
    # Kill-and-resume checkpoint determinism.
    run resume_check -- \
      --steps 96 --seed 7 --halt-updates 2 --dir "$ART/resume_check"
    ;;
  fuzz)
    # Fixed seeds, invariants + differential references.
    run fuzz_harness -- \
      --targets ci --seeds 30 --size 12 --budget-ms 30000 \
      --out "$ART/fuzz_report.json" --replay-out "$ART/fuzz_counterexample.json"
    ;;
  robustness)
    # Fixed-seed link-failure sweep.
    run robustness_sweep -- \
      --steps 512 --seed 0 --max-failures 3 --episodes 3 \
      | tee "$ART/robustness_sweep.csv"
    ;;
  chaos)
    # Serving SLOs under seeded faults, then validate the serve-mode
    # telemetry trace (shard-tagged events round-trip). budget_zero
    # burns its error budget, so the flight recorder must leave an
    # slo_alert postmortem behind — uploaded with the artifacts.
    run chaos_harness -- \
      --scenario all --seed 42 --requests 48 \
      --out "$ART/chaos_report.json" --telemetry "$ART/chaos_events.jsonl" \
      --postmortem "$ART/chaos_postmortem.jsonl"
    run telemetry_check -- --file "$ART/chaos_events.jsonl" --mode serve
    ;;
  serve_load)
    # Sharded fleet under ≥100k requests with batched GNN inference,
    # then gate sustained req/s and per-rung latency against the
    # committed baseline in results/.
    run serve_load -- \
      --requests 100000 --seed 42 --out "$ART/BENCH_serve_load.json"
    cp results/BENCH_serve_load.json "$ART/BENCH_serve_load.baseline.json"
    bash tools/check_bench.sh "$ART" "${BENCH_TOLERANCE_PCT:-50}"
    ;;
  trace)
    # Request-scoped tracing end to end: a seeded fleet run with a
    # full JSONL stream, the trace-mode validity gate, and the
    # waterfall report with its ≥99% completeness gate.
    run serve_load -- \
      --requests 4000 --seed 42 --out "$ART/BENCH_serve_load_trace.json" \
      --telemetry "$ART/fleet_trace.jsonl" \
      --postmortem "$ART/serve_load_postmortem.jsonl"
    run telemetry_check -- --file "$ART/fleet_trace.jsonl" --mode trace
    run fleet_report -- \
      --trace "$ART/fleet_trace.jsonl" --min-complete 0.99 \
      --out "$ART/FLEET_report.json"
    ;;
  failover)
    # Replicated self-healing under seeded chaos: primary kills,
    # hedged stragglers, rolling retools under live traffic, and a
    # flapping replica — every scenario replayed twice with
    # bit-identical rung AND failover sequences, zero unanswered
    # requests, and a ≥90% Fresh recovery window after the
    # primary-kill failover. replicas_exhausted is deliberately
    # broken (zero restart budget on every replica) and must fail;
    # its slo_alert postmortem is uploaded with the artifacts. The
    # serve-mode telemetry gate then checks the failover /
    # hedge_fired / replica_recovered event streams against their
    # counters.
    run chaos_harness -- \
      --scenario replication --seed 42 --requests 48 \
      --out "$ART/failover_report.json" --telemetry "$ART/failover_events.jsonl" \
      --postmortem "$ART/failover_postmortem.jsonl"
    run telemetry_check -- --file "$ART/failover_events.jsonl" --mode serve
    ;;
  scenario)
    # Live-dynamics scenario engine: every dynamic scenario (diurnal
    # flash crowd, rolling maintenance, flap storm, a 400-node WAN
    # under live drains) replayed twice with bit-identical event, rung
    # AND failover sequences and zero unanswered requests.
    # broken_blackout is deliberately broken and must fail; its
    # slo_alert postmortem is uploaded with the artifacts. Then a
    # cheap single-regime scenario_sweep replay (flap_storm needs no
    # in-process training) regenerates the quality-vs-reference side.
    run chaos_harness -- \
      --scenario dynamics --seed 42 --requests 88 \
      --out "$ART/scenario_report.json" --telemetry "$ART/scenario_events.jsonl" \
      --postmortem "$ART/scenario_postmortem.jsonl"
    run telemetry_check -- --file "$ART/scenario_events.jsonl" --mode serve \
      --relax breaker_transition,worker_restart,request_shed,health_transition
    run scenario_sweep -- \
      --regimes flap_storm --eval-steps 4 --seed 42 \
      --out "$ART/BENCH_scenario_sweep.json"
    ;;
  recovery)
    # Crash-consistent fleet state: crash/restore at the half-way
    # tick (warm restart on the restored LastGood rung), a corruption
    # sweep (torn prefixes, bit flips, missing record/manifest — every
    # case a typed cold start), and the deliberately broken
    # manifest_lies (a stale record under an intact manifest is
    # detected as ManifestMismatch but the scenario demands warm, so
    # it must fail). Each replays twice with bit-identical event, rung
    # AND failover sequences. The serve-mode telemetry gate then
    # checks snapshot_written / recovery events against their store.*
    # counters, and the snapshot_decode fuzz target hammers the record
    # codec with mutations that must all be typed StoreErrors.
    run chaos_harness -- \
      --scenario recovery --seed 42 --requests 48 \
      --out "$ART/recovery_report.json" --telemetry "$ART/recovery_events.jsonl" \
      --postmortem "$ART/recovery_postmortem.jsonl"
    run telemetry_check -- --file "$ART/recovery_events.jsonl" --mode serve \
      --relax breaker_transition,worker_restart,request_shed,health_transition
    run fuzz_harness -- \
      --targets snapshot_decode --seeds 30 --size 12 \
      --out "$ART/snapshot_fuzz_report.json" \
      --replay-out "$ART/snapshot_fuzz_counterexample.json"
    ;;
  *)
    echo "unknown smoke leg '$LEG'" >&2
    exit 2
    ;;
esac
