#!/usr/bin/env bash
# Perf-regression gate: compare freshly generated BENCH_*.json files
# against the committed baselines in results/.
#
#   tools/check_bench.sh <fresh_dir> [tolerance_pct]
#
# For every BENCH_*.json present in BOTH <fresh_dir> and results/:
#
# - serve_load groups: sustained req/s may not drop more than
#   tolerance_pct below baseline; per-rung p50/p99 drain latency may
#   not rise more than tolerance_pct above baseline (rungs with zero
#   baseline samples are skipped); the identity and chaos checks must
#   hold and the violations list must be empty.
# - harness groups (cargo-bench artifacts with a results[] array):
#   per-case median_ns and p95_ns may not rise more than
#   tolerance_pct above baseline.
#
# Baselines only present on one side are reported and skipped, so the
# gate never blocks on a bench that did not run. Exits non-zero on any
# regression; CI uploads both JSON files as artifacts in that case.
#
# The default tolerance is deliberately generous (50%): CI runners
# vary widely, and the gate exists to catch order-of-magnitude
# regressions and broken invariants, not scheduler noise.

set -euo pipefail

FRESH_DIR="${1:?usage: tools/check_bench.sh <fresh_dir> [tolerance_pct]}"
TOLERANCE="${2:-50}"
BASELINE_DIR="$(dirname "$0")/../results"

python3 - "$FRESH_DIR" "$BASELINE_DIR" "$TOLERANCE" <<'PYEOF'
import glob
import json
import os
import sys

fresh_dir, baseline_dir, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
tol = tol_pct / 100.0
regressions = []
compared = 0


def check_low(label, base, fresh):
    """fresh may not drop more than tol below base (throughput)."""
    global compared
    compared += 1
    if base > 0 and fresh < base * (1.0 - tol):
        regressions.append(
            f"{label}: {fresh:.0f} fell more than {tol_pct:.0f}% below baseline {base:.0f}"
        )


def check_high(label, base, fresh):
    """fresh may not rise more than tol above base (latency)."""
    global compared
    compared += 1
    if base > 0 and fresh > base * (1.0 + tol):
        regressions.append(
            f"{label}: {fresh:.0f} rose more than {tol_pct:.0f}% above baseline {base:.0f}"
        )


def check_serve_load(name, base, fresh):
    if fresh.get("violations"):
        regressions.append(f"{name}: fresh run reported violations: {fresh['violations']}")
    if not fresh.get("identity", {}).get("bit_identical", False):
        regressions.append(f"{name}: batched inference no longer bit-identical to per-request")
    chaos = fresh.get("chaos", {})
    if not chaos.get("healthy_shards_stayed_fresh", False):
        regressions.append(f"{name}: chaos blast radius escaped the killed shard")
    if chaos.get("killed_degraded", 0) <= 0:
        regressions.append(f"{name}: killed shard never degraded")
    drill = fresh.get("recovery_drill")
    if drill is not None:
        if not drill.get("warm", False):
            regressions.append(f"{name}: recovery drill did not restore warm")
        if not drill.get("corrupt_cold", False):
            regressions.append(f"{name}: corrupted store was not refused cold")
    check_low(
        f"{name}: throughput req_per_s",
        base["throughput"]["req_per_s"],
        fresh["throughput"]["req_per_s"],
    )
    base_rungs = {r["rung"]: r for r in base.get("rungs", [])}
    for r in fresh.get("rungs", []):
        b = base_rungs.get(r["rung"])
        if b is None or b.get("count", 0) == 0 or r.get("count", 0) == 0:
            continue
        for pct in ("p50_ns", "p99_ns"):
            check_high(f"{name}: {r['rung']} {pct}", b[pct], r[pct])


def check_harness(name, base, fresh):
    base_cases = {r["name"]: r for r in base.get("results", [])}
    for r in fresh.get("results", []):
        b = base_cases.get(r["name"])
        if b is None:
            print(f"note: {name}: case {r['name']} has no baseline, skipped")
            continue
        for metric in ("median_ns", "p95_ns"):
            if metric in b and metric in r:
                check_high(f"{name}: {r['name']} {metric}", b[metric], r[metric])


baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
fresh_seen = {
    os.path.basename(p) for p in glob.glob(os.path.join(fresh_dir, "BENCH_*.json"))
}
for baseline_path in baselines:
    name = os.path.basename(baseline_path)
    fresh_path = os.path.join(fresh_dir, name)
    if name not in fresh_seen:
        print(f"note: {name}: no fresh run in {fresh_dir}, skipped")
        continue
    fresh_seen.discard(name)
    with open(baseline_path) as f:
        base = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    if base.get("group") != fresh.get("group"):
        regressions.append(
            f"{name}: group mismatch ({base.get('group')} vs {fresh.get('group')})"
        )
        continue
    if base.get("group") == "serve_load":
        check_serve_load(name, base, fresh)
    else:
        check_harness(name, base, fresh)
    print(f"compared {name}")
for name in sorted(fresh_seen):
    print(f"note: {name}: fresh result has no committed baseline, skipped")

if regressions:
    print(f"\nPERF GATE FAILED ({len(regressions)} regressions, tolerance {tol_pct:.0f}%):")
    for r in regressions:
        print(f"  REGRESSION {r}")
    sys.exit(1)
print(f"perf gate passed: {compared} metrics within {tol_pct:.0f}% of baseline")
PYEOF
