#!/usr/bin/env bash
# Hermeticity gate: the workspace must build from in-tree sources only.
#
# Fails if any Cargo.toml declares a dependency that is not a pure
# `path = "..."` dependency (registry versions, git sources, or
# workspace-dependency indirection), or if Cargo.lock references a
# package outside the gddr-* workspace.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Extract the dependency-section bodies ([dependencies],
    # [dev-dependencies], [build-dependencies], [workspace.dependencies]
    # and target-specific variants), then drop blanks/comments.
    deps=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /dependencies\]$/)
            next
        }
        in_deps && NF && $0 !~ /^#/ { print }
    ' "$manifest")
    if [ -z "$deps" ]; then
        continue
    fi
    # Every remaining line must declare an in-tree path dependency and
    # must not smuggle in a registry version or git source.
    bad=$(printf '%s\n' "$deps" \
        | grep -vE '^[A-Za-z0-9_-]+ *= *\{[^}]*path *= *"[^"]*"[^}]*\}$' || true)
    if [ -z "$bad" ]; then
        bad=$(printf '%s\n' "$deps" | grep -E 'version *=|git *=|registry *=' || true)
    fi
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency in $manifest:" >&2
        printf '%s\n' "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done

# Cargo.lock must only pin workspace members.
if [ -f Cargo.lock ]; then
    external=$(grep '^name = ' Cargo.lock | grep -v '^name = "gddr-' || true)
    if [ -n "$external" ]; then
        echo "ERROR: external package(s) in Cargo.lock:" >&2
        printf '%s\n' "$external" | sed 's/^/    /' >&2
        fail=1
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "hermeticity check FAILED — the build must not require the network" >&2
    exit 1
fi
echo "hermeticity check OK: all dependencies are in-tree path dependencies"
