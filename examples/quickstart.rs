//! Quickstart: build the GDDR environment on a small topology, train a
//! GNN agent briefly with PPO, and compare it against shortest-path
//! routing and the LP optimum.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext};
use gddr_core::eval::{eval_oneshot, shortest_path_baseline};
use gddr_core::policies::{GnnPolicy, GnnPolicyConfig};
use gddr_net::topology::zoo;
use gddr_rl::{Ppo, PpoConfig, TrainingLog};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);

    // 1. A real topology from the transcribed zoo.
    let graph = zoo::cesnet();
    println!(
        "topology: {} ({} nodes, {} directed edges)",
        graph.name(),
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. The paper's workload: cyclical bimodal demand sequences.
    let train = standard_sequences(&graph, 3, 24, 6, &mut rng);
    let test = standard_sequences(&graph, 2, 24, 6, &mut rng);

    // 3. The data-driven-routing environment (obs: last m demand
    //    matrices; action: one weight per edge; reward: Eq. 2 ratio).
    let env_config = DdrEnvConfig {
        memory: 3,
        ..Default::default()
    };
    let mut env = DdrEnv::new(GraphContext::new(graph.clone(), train.clone()), env_config);

    // 4. A small GNN policy and PPO.
    let gnn_config = GnnPolicyConfig {
        memory: 3,
        latent: 12,
        hidden: 24,
        message_steps: 3,
        layer_norm: false,
    };
    let mut policy = GnnPolicy::new(&gnn_config, -0.7, &mut rng);
    println!("policy parameters: {}", policy.num_params());

    let mut ppo = Ppo::new(PpoConfig {
        gamma: 0.4,
        learning_rate: 1e-3,
        ..Default::default()
    });
    let mut log = TrainingLog::default();
    let steps = std::env::var("GDDR_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    println!("training for {steps} env steps ...");
    ppo.train(&mut env, &mut policy, steps, &mut rng, &mut log);
    println!(
        "episodes: {}, final mean reward (last 20): {:.3}",
        log.episodes.len(),
        log.recent_mean_reward(20)
    );

    // 5. Evaluate on held-out sequences (ratios: 1.0 = LP optimum).
    let ctx = GraphContext::new(graph, train);
    let agent = eval_oneshot(&ctx, &env_config, &policy, &test).expect("evaluation");
    let sp = shortest_path_baseline(&ctx, &env_config, &test).expect("baseline");
    println!("\n                         mean U/U_opt   (lower is better, 1.0 = optimal)");
    println!(
        "  trained GNN agent      {:.4} +- {:.4}",
        agent.mean_ratio, agent.std_ratio
    );
    println!(
        "  shortest-path routing  {:.4} +- {:.4}",
        sp.mean_ratio, sp.std_ratio
    );
    if agent.mean_ratio < sp.mean_ratio {
        println!("\nthe agent beats shortest-path routing.");
    } else {
        println!("\nthe agent has not beaten shortest-path yet; raise GDDR_STEPS.");
    }
}
