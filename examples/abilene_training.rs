//! Fig. 6-style fixed-graph comparison on Abilene, scaled down for a
//! quick demonstration (the full regeneration lives in
//! `gddr-bench/src/bin/fig6_fixed_graph.rs`).
//!
//! Trains the MLP baseline (Valadarsky et al.) and the GNN policy with
//! identical PPO budgets, then prints the Fig. 6 bars.
//!
//! Run with:
//! ```text
//! GDDR_STEPS=8000 cargo run --release --example abilene_training
//! ```

use gddr_core::experiment::{fixed_graph, FixedGraphConfig, WorkloadConfig};

fn main() {
    let steps = std::env::var("GDDR_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let config = FixedGraphConfig {
        workload: WorkloadConfig {
            seq_length: 30,
            cycle: 10,
            train_sequences: 3,
            test_sequences: 2,
        },
        train_steps: steps,
        ..Default::default()
    };
    println!(
        "training MLP and GNN on {} for {} steps each ...",
        config.graph_name, config.train_steps
    );
    let result = fixed_graph(&config);

    println!("\nFig. 6 (scaled): mean U/U_opt on held-out sequences");
    println!(
        "  MLP policy        {:.4} +- {:.4}",
        result.mlp.eval.mean_ratio, result.mlp.eval.std_ratio
    );
    println!(
        "  GNN policy        {:.4} +- {:.4}",
        result.gnn.eval.mean_ratio, result.gnn.eval.std_ratio
    );
    println!(
        "  shortest path     {:.4} +- {:.4}  (dotted line)",
        result.shortest_path.mean_ratio, result.shortest_path.std_ratio
    );

    println!("\nlearning curves (mean episode reward, window of 10):");
    for (name, log) in [("MLP", &result.mlp.log), ("GNN", &result.gnn.log)] {
        let curve = log.smoothed_curve(10);
        let tail: Vec<String> = curve
            .iter()
            .rev()
            .take(5)
            .rev()
            .map(|(s, r)| format!("{s}:{r:.1}"))
            .collect();
        println!("  {name}: ... {}", tail.join("  "));
    }
}
