//! Tour of every transcribed zoo topology: for one bimodal demand
//! matrix each, compare the LP-optimal max-link-utilisation against
//! shortest-path, ECMP and uniform-weight softmin routing.
//!
//! Run with:
//! ```text
//! cargo run --release --example topology_zoo_tour
//! ```

use gddr_lp::mcf::min_max_utilisation;
use gddr_net::topology::zoo;
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;
use gddr_routing::baselines::{ecmp_routing, shortest_path_routing};
use gddr_routing::sim::max_link_utilisation;
use gddr_routing::softmin::{softmin_routing, SoftminConfig};
use gddr_traffic::gen::{bimodal, BimodalParams};

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    println!(
        "{:<10} {:>5} {:>6} | {:>8} {:>8} {:>8} {:>8}",
        "topology", "nodes", "edges", "U_opt", "SP/opt", "ECMP/opt", "softmin/opt"
    );
    for g in zoo::all() {
        let dm = bimodal(g.num_nodes(), &BimodalParams::default(), &mut rng);
        let opt = min_max_utilisation(&g, &dm)
            .expect("zoo graphs are strongly connected")
            .u_max;
        let w = vec![1.0; g.num_edges()];
        let sp = max_link_utilisation(&g, &shortest_path_routing(&g, &w), &dm)
            .expect("baseline routes all traffic")
            .u_max;
        let ecmp = max_link_utilisation(&g, &ecmp_routing(&g, &w), &dm)
            .expect("baseline routes all traffic")
            .u_max;
        let sm = max_link_utilisation(
            &g,
            &softmin_routing(&g, &w, &SoftminConfig::default()).unwrap(),
            &dm,
        )
        .expect("softmin routes all traffic")
        .u_max;
        println!(
            "{:<10} {:>5} {:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            g.name(),
            g.num_nodes(),
            g.num_edges(),
            opt,
            sp / opt,
            ecmp / opt,
            sm / opt
        );
    }
}
