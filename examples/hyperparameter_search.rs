//! Hyperparameter search for the GDDR agents, mirroring the paper's
//! OpenTuner usage (§VIII-C): a seeded random search over PPO
//! hyperparameters, each candidate scored by a short training run.
//!
//! Run with:
//! ```text
//! GDDR_TRIALS=4 GDDR_STEPS=1500 cargo run --release --example hyperparameter_search
//! ```

use gddr_core::env::{standard_sequences, DdrEnv, DdrEnvConfig, GraphContext};
use gddr_core::policies::{GnnPolicy, GnnPolicyConfig};
use gddr_net::topology::zoo;
use gddr_rl::tuning::{random_search, PpoSearchSpace};
use gddr_rl::{Ppo, TrainingLog};
use gddr_rng::rngs::StdRng;
use gddr_rng::SeedableRng;

fn main() {
    let trials: usize = std::env::var("GDDR_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let steps: usize = std::env::var("GDDR_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);

    let graph = zoo::cesnet();
    let env_config = DdrEnvConfig {
        memory: 3,
        ..Default::default()
    };
    let gnn_config = GnnPolicyConfig {
        memory: 3,
        latent: 8,
        hidden: 16,
        message_steps: 2,
        layer_norm: false,
    };

    println!(
        "random search: {trials} trials x {steps} training steps on {}",
        graph.name()
    );
    let space = PpoSearchSpace::default();
    let results = random_search(&space, trials, 0, |ppo_config| {
        // Score = mean episode reward over the last quarter of a short
        // training run (higher is better; −1.0 would be optimal).
        let mut rng = StdRng::seed_from_u64(42);
        let seqs = standard_sequences(&graph, 2, 24, 6, &mut rng);
        let mut env = DdrEnv::new(GraphContext::new(graph.clone(), seqs), env_config);
        let mut policy = GnnPolicy::new(&gnn_config, -0.7, &mut rng);
        let mut ppo = Ppo::new(*ppo_config);
        let mut log = TrainingLog::default();
        ppo.train(&mut env, &mut policy, steps, &mut rng, &mut log);
        let score = log.recent_mean_reward(log.episodes.len().max(4) / 4);
        eprintln!(
            "  lr={:.2e} gamma={} n_steps={} mb={} epochs={} -> {score:.2}",
            ppo_config.learning_rate,
            ppo_config.gamma,
            ppo_config.n_steps,
            ppo_config.minibatch_size,
            ppo_config.epochs
        );
        score
    });

    println!("\nranked results (best first):");
    println!("rank,score,learning_rate,gamma,n_steps,minibatch,epochs,clip,ent_coef");
    for (i, t) in results.iter().enumerate() {
        println!(
            "{},{:.3},{:.2e},{},{},{},{},{},{}",
            i + 1,
            t.score,
            t.config.learning_rate,
            t.config.gamma,
            t.config.n_steps,
            t.config.minibatch_size,
            t.config.epochs,
            t.config.clip_range,
            t.config.ent_coef
        );
    }
}
