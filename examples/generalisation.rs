//! Fig. 8-style generalisation demonstration, scaled down (the full
//! regeneration lives in `gddr-bench/src/bin/fig8_generalisation.rs`).
//!
//! Trains the one-shot GNN and the Iterative GNN on a mixture of
//! topologies (half to double the size of Abilene), then evaluates on
//! unseen graphs and on Abilene with random modifications.
//!
//! Run with:
//! ```text
//! GDDR_STEPS=4000 cargo run --release --example generalisation
//! ```

use gddr_core::experiment::{generalisation, GeneralisationConfig, WorkloadConfig};

fn main() {
    let steps: usize = std::env::var("GDDR_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let config = GeneralisationConfig {
        workload: WorkloadConfig {
            seq_length: 16,
            cycle: 8,
            train_sequences: 2,
            test_sequences: 1,
        },
        train_steps: steps,
        train_steps_iterative: steps * 4,
        modified_variants: 3,
        ..Default::default()
    };
    println!(
        "training one-shot GNN ({} steps) and iterative GNN ({} steps) on a graph mixture ...",
        config.train_steps, config.train_steps_iterative
    );
    let r = generalisation(&config);

    println!("\nFig. 8 (scaled): mean U/U_opt on unseen topologies");
    println!("  family             policy      ratio     SP line");
    println!(
        "  different graphs   GNN         {:.4}    {:.4}",
        r.gnn_different.policy.mean_ratio, r.gnn_different.shortest_path.mean_ratio
    );
    println!(
        "  different graphs   GNN-Iter    {:.4}    {:.4}",
        r.iterative_different.policy.mean_ratio, r.iterative_different.shortest_path.mean_ratio
    );
    println!(
        "  modified Abilene   GNN         {:.4}    {:.4}",
        r.gnn_modified.policy.mean_ratio, r.gnn_modified.shortest_path.mean_ratio
    );
    println!(
        "  modified Abilene   GNN-Iter    {:.4}    {:.4}",
        r.iterative_modified.policy.mean_ratio, r.iterative_modified.shortest_path.mean_ratio
    );
}
